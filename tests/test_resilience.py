"""Tier-1 tests for the resilience layer — no worker processes spawned.

Every policy in :mod:`repro.serving.resilience` is a deterministic state
machine given its inputs (injectable clocks, seeded jitter), so the full
retry / circuit-breaker / brownout behaviour is exercised here
in-process; the multi-process integration lives in
``tests/test_serving_resilience.py`` (marked ``mp``). Also covered: the
registry's brownout ladder and subscriber hardening, the MicroBatcher
force-put admission accounting, and the thread server's retry/breaker
wiring.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    QueueFullError,
    ServerClosedError,
    ServingError,
    WorkerCrashedError,
    WorkerWedgedError,
)
from repro.nn import BlockCirculantDense, Sequential
from repro.serving import (
    BreakerPolicy,
    CircuitBreaker,
    DegradationController,
    DegradationPolicy,
    InferenceServer,
    MicroBatcher,
    ModelRegistry,
    RetryPolicy,
)
from repro.serving.scheduler import BatchPolicy


class FakeClock:
    """Manually advanced monotonic clock for breaker/controller tests."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# -- error taxonomy ----------------------------------------------------------
class TestErrorHierarchy:
    def test_wedged_is_a_crash(self):
        # Handlers (and RetryPolicy's default retry_on) written for
        # worker loss cover the watchdog's kills for free.
        assert issubclass(WorkerWedgedError, WorkerCrashedError)
        assert issubclass(WorkerWedgedError, ServingError)

    def test_circuit_open_is_a_serving_error(self):
        assert issubclass(CircuitOpenError, ServingError)

    def test_server_closed_is_both_serving_and_configuration_error(self):
        # Dual inheritance: new code catches the ServingError taxonomy,
        # pre-existing callers that caught ConfigurationError on
        # submit-after-stop keep working.
        assert issubclass(ServerClosedError, ServingError)
        assert issubclass(ServerClosedError, ConfigurationError)


# -- RetryPolicy -------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_ms=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(retry_on=())

    def test_retryable_covers_wedge_subclass_but_not_model_errors(self):
        policy = RetryPolicy()
        assert policy.retryable(WorkerCrashedError("boom"))
        assert policy.retryable(WorkerWedgedError("stuck"))
        assert not policy.retryable(ValueError("deterministic"))

    def test_delays_grow_exponentially_without_jitter(self):
        policy = RetryPolicy(backoff_ms=10.0, multiplier=2.0, jitter=0.0,
                             max_attempts=4)
        rng = policy.rng()
        delays = [policy.delay_s(k, rng) for k in (1, 2, 3)]
        assert delays == [0.01, 0.02, 0.04]

    def test_jitter_is_bounded_and_seed_deterministic(self):
        policy = RetryPolicy(backoff_ms=10.0, multiplier=1.0, jitter=0.5,
                             seed=42)
        a = [policy.delay_s(1, policy.rng()) for _ in range(3)]
        assert a[0] == a[1] == a[2]  # same seed, same stream
        assert 0.01 <= a[0] <= 0.015

    def test_next_attempt_at_exhausts_budget(self):
        policy = RetryPolicy(max_attempts=2, jitter=0.0)
        rng = policy.rng()
        assert policy.next_attempt_at(2, 0.0, None, rng) is not None
        assert policy.next_attempt_at(3, 0.0, None, rng) is None

    def test_next_attempt_never_scheduled_past_deadline(self):
        policy = RetryPolicy(backoff_ms=100.0, jitter=0.0, max_attempts=5)
        rng = policy.rng()
        # Attempt 2 backs off 0.1s; a deadline 50ms away forbids it.
        assert policy.next_attempt_at(2, 10.0, 10.05, rng) is None
        at = policy.next_attempt_at(2, 10.0, 10.5, rng)
        assert at == pytest.approx(10.1)


# -- CircuitBreaker ----------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self, clock, **kw):
        defaults = dict(window_s=10.0, min_requests=4,
                        failure_threshold=0.5, cooldown_s=5.0,
                        half_open_probes=1)
        defaults.update(kw)
        return CircuitBreaker(BreakerPolicy(**defaults), clock=clock)

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            BreakerPolicy(window_s=0)
        with pytest.raises(ConfigurationError):
            BreakerPolicy(min_requests=0)
        with pytest.raises(ConfigurationError):
            BreakerPolicy(failure_threshold=0.0)
        with pytest.raises(ConfigurationError):
            BreakerPolicy(failure_threshold=1.5)
        with pytest.raises(ConfigurationError):
            BreakerPolicy(cooldown_s=-1)
        with pytest.raises(ConfigurationError):
            BreakerPolicy(half_open_probes=0)

    def test_stays_closed_below_min_requests(self):
        clock = FakeClock()
        cb = self._breaker(clock)
        for _ in range(3):
            cb.record(False)
        assert cb.state == "closed"
        cb.admit()  # does not raise

    def test_opens_at_failure_threshold_and_fast_rejects(self):
        clock = FakeClock()
        cb = self._breaker(clock)
        for ok in (True, True, False, False):  # 50% of 4 >= threshold
            cb.record(ok)
        assert cb.state == "open"
        with pytest.raises(CircuitOpenError):
            cb.admit()
        assert cb.rejected == 1

    def test_old_outcomes_age_out_of_the_window(self):
        clock = FakeClock()
        cb = self._breaker(clock)
        for _ in range(3):
            cb.record(False)
        clock.advance(11.0)  # past window_s
        for _ in range(3):
            cb.record(True)
        # The three old failures aged out: 1 failure in 4 < 50%.
        cb.record(False)
        assert cb.state == "closed"

    def test_half_open_probe_success_closes_with_clean_window(self):
        clock = FakeClock()
        cb = self._breaker(clock)
        for _ in range(4):
            cb.record(False)
        assert cb.state == "open"
        clock.advance(5.0)  # cooldown elapsed
        cb.admit()  # first probe admitted
        assert cb.state == "half-open"
        with pytest.raises(CircuitOpenError):
            cb.admit()  # probe budget (1) already in flight
        cb.record(True)
        assert cb.state == "closed"
        # Clean window: one fresh failure must not instantly re-open.
        cb.record(False)
        assert cb.state == "closed"

    def test_half_open_probe_failure_reopens_for_a_fresh_cooldown(self):
        clock = FakeClock()
        cb = self._breaker(clock)
        for _ in range(4):
            cb.record(False)
        clock.advance(5.0)
        cb.admit()
        cb.record(False)  # probe failed
        assert cb.state == "open"
        clock.advance(4.0)  # fresh cooldown not yet over
        with pytest.raises(CircuitOpenError):
            cb.admit()

    def test_multi_probe_budget(self):
        clock = FakeClock()
        cb = self._breaker(clock, half_open_probes=2)
        for _ in range(4):
            cb.record(False)
        clock.advance(5.0)
        cb.admit()
        cb.admit()
        with pytest.raises(CircuitOpenError):
            cb.admit()
        cb.record(True)
        assert cb.state == "half-open"  # one success is not enough
        cb.record(True)
        assert cb.state == "closed"

    def test_straggler_outcomes_while_open_are_ignored(self):
        clock = FakeClock()
        cb = self._breaker(clock)
        for _ in range(4):
            cb.record(False)
        opened = cb.state
        cb.record(True)  # late callback from a pre-open request
        assert opened == cb.state == "open"


# -- registry: subscriber hardening and brownout ladder ----------------------
def _net(out: int = 16, seed: int = 0) -> Sequential:
    net = Sequential(BlockCirculantDense(32, out, 8, seed=seed))
    net.compile_inference()
    return net


class TestRegistryNotifyHardening:
    def test_raising_subscriber_does_not_abort_swap_or_skip_others(
        self, caplog
    ):
        registry = ModelRegistry()
        seen = []

        def bad(name, net, gen):
            raise RuntimeError("subscriber exploded")

        def good(name, net, gen):
            seen.append((name, gen))

        registry.subscribe(bad)
        registry.subscribe(good)
        first = _net(seed=1)
        second = _net(seed=2)
        with caplog.at_level("ERROR", logger="repro.serving.registry"):
            registry.register("ep", first, compile=False)
            registry.swap("ep", second, compile=False)
        # The swap landed despite the raising subscriber...
        assert registry.get("ep") is second
        assert registry.generation("ep") == 1
        # ...every later subscriber still saw every publish...
        assert seen == [("ep", 0), ("ep", 1)]
        # ...and the failures were logged, not swallowed silently.
        assert sum(
            "subscriber" in rec.message for rec in caplog.records
        ) >= 2


class TestBrownoutLadder:
    def test_set_ladder_needs_two_variants(self):
        registry = ModelRegistry()
        with pytest.raises(ConfigurationError):
            registry.set_ladder("ep", [_net()], compile=False)

    def test_set_ladder_registers_rung_zero_for_fresh_endpoint(self):
        registry = ModelRegistry()
        full, low = _net(seed=1), _net(seed=2)
        registry.set_ladder("ep", [full, low], compile=False)
        assert registry.get("ep") is full
        assert registry.ladder_level("ep") == 0

    def test_set_ladder_requires_current_net_among_variants(self):
        registry = ModelRegistry()
        registry.register("ep", _net(seed=3), compile=False)
        with pytest.raises(ConfigurationError, match="not in the ladder"):
            registry.set_ladder(
                "ep", [_net(seed=1), _net(seed=2)], compile=False
            )

    def test_serve_level_is_an_atomic_generation_bumping_swap(self):
        registry = ModelRegistry()
        full, low = _net(seed=1), _net(seed=2)
        registry.set_ladder("ep", [full, low], compile=False)
        gen0 = registry.generation("ep")
        registry.serve_level("ep", 1)
        assert registry.get("ep") is low
        assert registry.ladder_level("ep") == 1
        assert registry.generation("ep") == gen0 + 1
        # Idempotent: re-serving the current level is not another swap.
        registry.serve_level("ep", 1)
        assert registry.generation("ep") == gen0 + 1
        registry.serve_level("ep", 0)
        assert registry.get("ep") is full

    def test_serve_level_bounds(self):
        registry = ModelRegistry()
        registry.set_ladder("ep", [_net(seed=1), _net(seed=2)],
                            compile=False)
        with pytest.raises(ConfigurationError):
            registry.serve_level("ep", 2)
        with pytest.raises(ConfigurationError):
            registry.serve_level("other", 0)

    def test_foreign_swap_invalidates_the_ladder(self):
        registry = ModelRegistry()
        registry.set_ladder("ep", [_net(seed=1), _net(seed=2)],
                            compile=False)
        registry.swap("ep", _net(seed=9), compile=False)
        with pytest.raises(ConfigurationError, match="no degradation"):
            registry.ladder_level("ep")

    def test_unregister_drops_ladder_state(self):
        registry = ModelRegistry()
        registry.set_ladder("ep", [_net(seed=1), _net(seed=2)],
                            compile=False)
        registry.unregister("ep")
        with pytest.raises(ConfigurationError):
            registry.ladder("ep")


# -- DegradationController ---------------------------------------------------
class _StubServer:
    """stats(endpoint)-shaped counter source over a real registry."""

    def __init__(self, registry):
        self.registry = registry
        self.counts = {"requests": 0, "shed": 0, "expired": 0}

    def stats(self, endpoint):
        return dict(self.counts)


class TestDegradationController:
    def _setup(self, rungs=3, **policy_kw):
        registry = ModelRegistry()
        variants = [_net(seed=i) for i in range(rungs)]
        registry.set_ladder("ep", variants, compile=False)
        server = _StubServer(registry)
        clock = FakeClock()
        defaults = dict(step_down_pressure=0.2, step_up_pressure=0.02,
                        dwell_s=1.0, recovery_s=2.0)
        defaults.update(policy_kw)
        controller = DegradationController(
            server, "ep", DegradationPolicy(**defaults), clock=clock,
        )
        return server, controller, clock

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            DegradationPolicy(step_down_pressure=0.0)
        with pytest.raises(ConfigurationError):
            DegradationPolicy(step_up_pressure=0.5, step_down_pressure=0.2)
        with pytest.raises(ConfigurationError):
            DegradationPolicy(dwell_s=-1)
        with pytest.raises(ConfigurationError):
            DegradationPolicy(recovery_s=-1)

    def test_requires_a_ladder_at_construction(self):
        registry = ModelRegistry()
        registry.register("ep", _net(), compile=False)
        with pytest.raises(ConfigurationError, match="no degradation"):
            DegradationController(_StubServer(registry), "ep")

    def test_steps_down_under_pressure(self):
        server, controller, clock = self._setup()
        server.counts.update(requests=80, shed=20)  # pressure 0.4
        assert controller.tick() == 1
        assert controller.level == 1
        assert [(a, b) for _, a, b in controller.transitions] == [(0, 1)]

    def test_dwell_bounds_consecutive_steps(self):
        server, controller, clock = self._setup()
        server.counts.update(requests=80, shed=20)
        controller.tick()
        server.counts.update(requests=160, shed=40)  # still pressured
        clock.advance(0.5)  # < dwell_s
        assert controller.tick() == 1
        clock.advance(0.6)  # dwell satisfied
        server.counts.update(requests=240, shed=60)
        assert controller.tick() == 2

    def test_bottom_rung_never_overstepped(self):
        server, controller, clock = self._setup(rungs=2)
        server.counts.update(requests=50, shed=50)
        controller.tick()
        clock.advance(2.0)
        server.counts.update(requests=100, shed=100)
        assert controller.tick() == 1  # already at the bottom

    def test_recovery_needs_sustained_low_pressure(self):
        server, controller, clock = self._setup()
        server.counts.update(requests=80, shed=20)
        controller.tick()
        assert controller.level == 1
        # Quiet, but not for long enough yet.
        clock.advance(1.5)
        server.counts.update(requests=180)
        assert controller.tick() == 1
        clock.advance(1.5)
        server.counts.update(requests=280)
        # Low for 1.5s < recovery_s=2.0 since the last tick started the
        # low streak; one more quiet interval completes it.
        assert controller.tick() == 1
        clock.advance(1.0)
        server.counts.update(requests=380)
        assert controller.tick() == 0

    def test_hysteresis_band_restarts_the_recovery_clock(self):
        server, controller, clock = self._setup()
        server.counts.update(requests=80, shed=20)
        controller.tick()
        # Low pressure starts the recovery clock...
        clock.advance(1.5)
        server.counts.update(requests=180)
        controller.tick()
        # ...a mid-band sample (2% < p < 20%) restarts it...
        clock.advance(1.0)
        server.counts.update(requests=190, shed=21)  # p = 2/11 ≈ 18%
        assert controller.tick() == 1
        # ...so another 1.9s of quiet is still not enough.
        clock.advance(1.9)
        server.counts.update(requests=290, shed=21)
        assert controller.tick() == 1
        clock.advance(2.0)
        server.counts.update(requests=390, shed=21)
        assert controller.tick() == 0

    def test_no_traffic_means_no_pressure(self):
        server, controller, clock = self._setup()
        assert controller.tick() == 0
        clock.advance(5.0)
        assert controller.tick() == 0

    def test_background_loop_start_stop(self):
        registry = ModelRegistry()
        registry.set_ladder("ep", [_net(seed=1), _net(seed=2)],
                            compile=False)
        controller = DegradationController(
            _StubServer(registry), "ep", interval_s=0.01,
        )
        with controller:
            time.sleep(0.05)
        assert controller.level == 0  # idle: never stepped


# -- MicroBatcher force-put accounting ---------------------------------------
class TestMicroBatcherForcePut:
    def test_forced_items_do_not_steal_admission_slots(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=8, max_wait_ms=0.0),
                               max_pending=2)
        batcher.put("a")
        batcher.put("b")
        with pytest.raises(QueueFullError):
            batcher.put("c")
        # A forced sentinel passes the full queue without a slot...
        batcher.put("wake", force=True)
        batch = batcher.next_batch(timeout=0.1)
        assert batch == ["a", "b", "wake"]
        # ...and draining it released exactly the two counted slots: the
        # bound is still 2, not inflated by the forced item's passage.
        batcher.put("d")
        batcher.put("e")
        with pytest.raises(QueueFullError):
            batcher.put("f")

    def test_forced_item_with_lapsed_deadline_reaches_the_sink(self):
        dropped = []
        batcher = MicroBatcher(
            BatchPolicy(max_batch=4, max_wait_ms=0.0),
            expired=lambda item: item == "late",
            on_expired=dropped.append,
        )
        batcher.put("late", force=True)
        batcher.put("ok")
        assert batcher.next_batch(timeout=0.1) == ["ok"]
        assert dropped == ["late"]


# -- thread-server integration ----------------------------------------------
class _FlakyNet:
    """Raises a transient worker-loss error for the first N forwards."""

    input_sample_shape = (4,)

    def __init__(self, failures: int, exc_type=WorkerCrashedError):
        self.failures = failures
        self.exc_type = exc_type
        self.calls = 0

    def inference_forward(self, x):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc_type("injected transient fault")
        return np.asarray(x) * 2.0


class TestThreadServerResilience:
    def test_retry_makes_a_transient_fault_invisible(self):
        net = _FlakyNet(failures=1)
        retry = RetryPolicy(max_attempts=3, backoff_ms=1.0, jitter=0.0,
                            seed=0)
        with InferenceServer(net, max_wait_ms=0.0, workers=1,
                             retry=retry) as server:
            y = server.infer(np.ones(4), timeout=30.0)
        np.testing.assert_array_equal(y, 2.0 * np.ones(4))
        assert net.calls == 2
        assert server.stats()["retries"] == 1
        assert server.stats()["errors"] == 0

    def test_retry_budget_exhaustion_surfaces_the_original_error(self):
        net = _FlakyNet(failures=10)
        retry = RetryPolicy(max_attempts=2, backoff_ms=1.0, jitter=0.0)
        with InferenceServer(net, max_wait_ms=0.0, workers=1,
                             retry=retry) as server:
            future = server.submit(np.ones(4))
            with pytest.raises(WorkerCrashedError):
                future.result(30.0)
        assert net.calls == 2  # max_attempts total, not per retry

    def test_deterministic_errors_are_not_retried(self):
        net = _FlakyNet(failures=10, exc_type=ValueError)
        retry = RetryPolicy(max_attempts=3, backoff_ms=1.0)
        with InferenceServer(net, max_wait_ms=0.0, workers=1,
                             retry=retry) as server:
            future = server.submit(np.ones(4))
            with pytest.raises(ValueError):
                future.result(30.0)
        assert net.calls == 1

    def test_breaker_opens_then_probe_heals(self):
        net = _FlakyNet(failures=4)
        breaker = BreakerPolicy(window_s=60.0, min_requests=4,
                                failure_threshold=0.5, cooldown_s=0.0,
                                half_open_probes=1)
        with InferenceServer(net, max_wait_ms=0.0, workers=1,
                             breaker=breaker) as server:
            for _ in range(4):
                with pytest.raises(WorkerCrashedError):
                    server.infer(np.ones(4), timeout=30.0)
            assert server.breaker("default").state == "open"
            # cooldown_s=0: the next submit is the half-open probe, and
            # the net has healed — the probe closes the circuit.
            y = server.infer(np.ones(4), timeout=30.0)
            np.testing.assert_array_equal(y, 2.0 * np.ones(4))
            assert server.breaker("default").state == "closed"

    def test_submit_after_stop_raises_server_closed(self):
        server = InferenceServer(_FlakyNet(failures=0), max_wait_ms=0.0)
        server.start()
        server.stop()
        with pytest.raises(ServerClosedError):
            server.submit(np.ones(4))
        # Back-compat: the same exception still satisfies older
        # ConfigurationError handlers.
        with pytest.raises(ConfigurationError):
            server.submit(np.ones(4))

    def test_concurrent_submits_against_stop_never_hang(self):
        # Hammer submit() from several threads while stop() runs: every
        # call must either return a future that resolves, or raise a
        # clean ServingError — never hang or leak a stuck future.
        net = _FlakyNet(failures=0)
        server = InferenceServer(net, max_wait_ms=0.0, workers=2).start()
        outcomes: list[str] = []
        lock = threading.Lock()
        go = threading.Event()

        def client():
            go.wait(5.0)
            for _ in range(50):
                try:
                    future = server.submit(np.ones(4))
                except ServingError:
                    with lock:
                        outcomes.append("rejected")
                    continue
                try:
                    future.result(30.0)
                    with lock:
                        outcomes.append("ok")
                except ServingError:
                    with lock:
                        outcomes.append("failed")

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        go.set()
        time.sleep(0.01)
        server.stop()
        for t in threads:
            t.join(timeout=60.0)
            assert not t.is_alive(), "client thread hung across stop()"
        assert len(outcomes) == 200
        assert "ok" in outcomes or "rejected" in outcomes
