"""Store/plan round trips for the block-circulant recurrent layers.

The refactor's config-spine contract: a recurrent layer exposes its gate
projections through ``planned_layers()``, so the execution plan, the
artifact store and ``ModelRegistry.apply_plan`` treat an LSTM/GRU
network exactly like a feed-forward one — per-gate plan entries survive
``save_artifact -> load_artifact -> apply_plan`` bit-identically, and a
cold-started endpoint recomputes **zero** weight spectra.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fftcore import CountingFFTBackend, get_backend
from repro.nn import BlockCirculantGRU, BlockCirculantLSTM, ReLU, Sequential
from repro.plan import ExecutionPlan, planned_view
from repro.serving import ModelRegistry
from repro.store import (
    layer_from_spec,
    layer_to_spec,
    load_artifact,
    read_manifest,
    save_artifact,
    verify_artifact,
)


def _rnn_net(seed: int = 0) -> Sequential:
    return Sequential(
        BlockCirculantLSTM(10, 8, 4, seed=seed),
        ReLU(),
        BlockCirculantGRU(8, 6, 2, seed=seed + 1),
    )


def test_layer_spec_round_trips_recurrent_layers():
    for layer in (
        BlockCirculantLSTM(10, 8, 4, seed=1),
        BlockCirculantGRU(9, 6, 3, bias=False, seed=2),
    ):
        spec = layer_to_spec(layer)
        rebuilt = layer_from_spec(spec)
        assert type(rebuilt) is type(layer)
        assert rebuilt.in_features == layer.in_features
        assert rebuilt.hidden_size == layer.hidden_size
        assert rebuilt.block_size == layer.block_size
        assert [name for name, _ in rebuilt.named_children()] == [
            name for name, _ in layer.named_children()
        ]
        # Default gates persist backend=None (resolve against the
        # ambient default at use time), so artifacts stay portable.
        assert spec["config"]["gate_backends"] == {
            name: None for name, _ in layer.named_children()
        }


def test_save_load_round_trip_is_bit_identical_with_zero_ffts(tmp_path):
    rng = np.random.default_rng(0)
    net = _rnn_net()
    net.compile_inference()
    x = rng.normal(size=(3, 5, 10))
    expected = net.inference_forward(x)

    path = tmp_path / "rnn.artifact"
    save_artifact(net, path)
    verify_artifact(path)

    counting = CountingFFTBackend(get_backend("numpy"))
    loaded = load_artifact(path, backend=counting)
    assert counting.total() == 0, (
        "cold start must seed every gate spectrum from the artifact"
    )
    assert np.array_equal(loaded.inference_forward(x), expected)

    signature = read_manifest(path)["serving_signature"]
    assert signature["stateful"] is True
    assert signature["time_axis"] == 0


def test_per_gate_plan_entries_survive_the_store_round_trip(tmp_path):
    net = _rnn_net(seed=3)
    net.compile_inference()
    plan = ExecutionPlan.from_network(net)
    gate_paths = [path for path, _ in net.planned_layers()]
    assert len(gate_paths) == 8 + 6

    path = tmp_path / "rnn.artifact"
    save_artifact(net, path)
    loaded = load_artifact(path)
    restored = ExecutionPlan.from_network(loaded)
    assert restored.to_json() == plan.to_json()
    assert [p for p, _ in loaded.planned_layers()] == gate_paths


def test_apply_plan_hot_swaps_a_loaded_recurrent_endpoint(tmp_path):
    rng = np.random.default_rng(1)
    net = _rnn_net(seed=4)
    net.compile_inference()
    x = rng.normal(size=(2, 4, 10))

    path = tmp_path / "rnn.artifact"
    save_artifact(net, path)

    registry = ModelRegistry()
    registry.register("default", load_artifact(path))
    entries = sum(1 for _ in net.planned_layers())
    plan = ExecutionPlan.uniform(entries, bits=16)
    swapped = registry.apply_plan("default", plan)
    served, generation = registry.snapshot("default")
    assert served is swapped
    assert generation >= 1

    # The swapped view is the same quantisation planned_view builds
    # directly from the loaded network — bit-identical per gate.
    reference = planned_view(load_artifact(path), plan)
    np.testing.assert_array_equal(
        swapped.inference_forward(x), reference.inference_forward(x)
    )
    for (name, param), (ref_name, ref_param) in zip(
        swapped.named_parameters(), reference.named_parameters()
    ):
        assert name == ref_name
        np.testing.assert_array_equal(param.value, ref_param.value)


def test_per_gate_backend_overrides_survive_the_store(tmp_path):
    net = Sequential(BlockCirculantLSTM(8, 8, 4, seed=5))
    net.layers[0].xf.backend = "radix2"
    net.compile_inference()
    path = tmp_path / "mixed.artifact"
    save_artifact(net, path)
    loaded = load_artifact(path)
    gates = dict(loaded.layers[0].named_children())
    assert gates["xf"].backend == "radix2"
    assert gates["xi"].backend is None  # ambient default, as saved
