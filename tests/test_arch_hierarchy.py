"""Tests for the §4.4 memory-hierarchy and prefetching model."""

from __future__ import annotations

import pytest

from repro.arch import (
    AccessPattern,
    CacheModel,
    analyze_hierarchy,
    block_circulant_access_pattern,
    pruned_sparse_access_pattern,
    required_memory_levels,
    sram_max_frequency_hz,
)
from repro.errors import ConfigurationError

FOUR_MB = 4 * 2**20


class TestFrequencyModel:
    def test_small_bank_is_fast(self):
        assert sram_max_frequency_hz(64 * 1024) >= 1e9

    def test_frequency_falls_with_capacity(self):
        small = sram_max_frequency_hz(64 * 1024)
        large = sram_max_frequency_hz(FOUR_MB)
        assert large < small
        # sqrt scaling: 64x capacity -> 8x slower.
        assert small / large == pytest.approx(8.0, rel=1e-6)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            sram_max_frequency_hz(0)


class TestLevelRequirement:
    def test_paper_200mhz_single_level(self):
        # §4.4: "if we target ... 200MHz ... memory hierarchy is not
        # necessary" for a multiple-MB memory.
        assert required_memory_levels(200e6, FOUR_MB) == 1

    def test_paper_800mhz_needs_hierarchy(self):
        # §4.4: "if we target ... 800MHz, an effective memory hierarchy
        # with at least two levels ... becomes necessary".
        assert required_memory_levels(800e6, FOUR_MB) == 2

    def test_invalid_frequency(self):
        with pytest.raises(ConfigurationError):
            required_memory_levels(0, FOUR_MB)


class TestAccessPatterns:
    def test_block_circulant_is_regular(self):
        assert block_circulant_access_pattern().regularity > 0.9

    def test_pruned_is_irregular_at_high_sparsity(self):
        assert pruned_sparse_access_pattern(0.9).regularity == pytest.approx(0.1)

    def test_regularity_bounds(self):
        with pytest.raises(ConfigurationError):
            AccessPattern("bad", 1.5)
        with pytest.raises(ConfigurationError):
            pruned_sparse_access_pattern(1.0)


class TestCacheModel:
    def test_regular_stream_has_tiny_miss_rate(self):
        cache = CacheModel()
        miss = cache.miss_rate(block_circulant_access_pattern())
        assert miss < 0.03

    def test_irregular_stream_misses_heavily(self):
        cache = CacheModel()
        miss = cache.miss_rate(pruned_sparse_access_pattern(0.9))
        assert miss > 0.5

    def test_prefetch_advantage_over_pruning(self):
        # The §4.4 claim: regularity is "another advantage over prior
        # compression schemes" — order-of-magnitude fewer stalls.
        cache = CacheModel()
        circulant = cache.stall_cycles(
            block_circulant_access_pattern(), accesses=10_000
        )
        pruned = cache.stall_cycles(
            pruned_sparse_access_pattern(0.9), accesses=10_000
        )
        assert pruned > 20 * circulant

    def test_average_access_cycles_bounds(self):
        cache = CacheModel()
        perfect = AccessPattern("perfect", 1.0)
        hostile = AccessPattern("hostile", 0.0)
        assert cache.average_access_cycles(perfect) < 1.2
        assert cache.average_access_cycles(hostile) == pytest.approx(
            1.0 + cache.miss_penalty_cycles
        )

    def test_negative_accesses_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheModel().stall_cycles(block_circulant_access_pattern(), -1)


class TestAnalyzeHierarchy:
    def test_single_level_report(self):
        report = analyze_hierarchy(200e6, FOUR_MB)
        assert report.levels == 1
        assert report.miss_rate == 0.0
        assert report.average_access_cycles == 1.0

    def test_two_level_report_regular(self):
        report = analyze_hierarchy(800e6, FOUR_MB)
        assert report.levels == 2
        assert report.miss_rate < 0.03
        assert report.average_access_cycles < 1.3

    def test_two_level_report_pruned(self):
        report = analyze_hierarchy(
            800e6, FOUR_MB, pattern=pruned_sparse_access_pattern(0.9)
        )
        assert report.levels == 2
        assert report.average_access_cycles > 4.0
