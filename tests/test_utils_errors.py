"""Tests for the utility helpers and the exception hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    BackendError,
    ConfigurationError,
    ConvergenceError,
    NotPowerOfTwoError,
    ReproError,
    ShapeError,
)
from repro.utils import (
    ensure_divisible,
    ensure_in_range,
    ensure_positive,
    ensure_power_of_two,
    is_power_of_two,
    make_rng,
    next_power_of_two,
)


class TestPowerOfTwo:
    def test_is_power_of_two(self):
        assert all(is_power_of_two(n) for n in (1, 2, 4, 1024, 2**20))
        assert not any(is_power_of_two(n) for n in (0, -2, 3, 6, 12, 100))

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(500) == 512
        assert next_power_of_two(1025) == 2048

    def test_next_power_of_two_rejects_zero(self):
        with pytest.raises(ShapeError):
            next_power_of_two(0)

    def test_ensure_power_of_two(self):
        assert ensure_power_of_two(64) == 64
        with pytest.raises(NotPowerOfTwoError) as excinfo:
            ensure_power_of_two(12, "block")
        assert "block" in str(excinfo.value)


class TestValidators:
    def test_ensure_positive(self):
        assert ensure_positive(3) == 3
        with pytest.raises(ConfigurationError):
            ensure_positive(0, "count")

    def test_ensure_divisible(self):
        assert ensure_divisible(12, 4) == 3
        with pytest.raises(ShapeError):
            ensure_divisible(13, 4, "width")
        with pytest.raises(ConfigurationError):
            ensure_divisible(12, 0)

    def test_ensure_in_range(self):
        assert ensure_in_range(5, 1, 10) == 5
        with pytest.raises(ConfigurationError):
            ensure_in_range(11, 1, 10, "depth")


class TestRng:
    def test_int_seed_reproducible(self):
        a = make_rng(42).normal(size=5)
        b = make_rng(42).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ShapeError, NotPowerOfTwoError, ConfigurationError,
                    ConvergenceError, BackendError):
            assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        # Callers using plain ValueError handling still catch shape issues.
        assert issubclass(ShapeError, ValueError)
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(NotPowerOfTwoError, ShapeError)

    def test_convergence_is_runtime_error(self):
        assert issubclass(ConvergenceError, RuntimeError)
