"""Length-bucketed sequence serving (scheduler + both runtimes).

The serving half of the time-stepped forward contract: ragged sequence
requests are grouped by bucketed padded length, zero-padded within their
bucket only, and each response carries the request's true-length output.
The multi-process variant at the bottom is marked ``mp`` (excluded from
tier-1, run by the dedicated CI job).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import (
    BlockCirculantDense,
    BlockCirculantGRU,
    BlockCirculantLSTM,
    ReLU,
    Sequential,
)
from repro.plan import ExecutionPlan
from repro.serving import InferenceServer, ModelRegistry
from repro.serving.scheduler import (
    assemble_sequence_batch,
    bucket_key,
    bucket_length,
)


def _rnn_net(seed: int = 0) -> Sequential:
    net = Sequential(BlockCirculantLSTM(10, 8, 4, seed=seed))
    net.compile_inference()
    return net


# -- scheduler units ----------------------------------------------------------

class TestBucketing:
    def test_bucket_length_rounds_up_to_the_multiple(self):
        assert bucket_length(5, 4) == 8
        assert bucket_length(8, 4) == 8
        assert bucket_length(1, 4) == 4

    def test_bucket_length_passthrough_without_a_multiple(self):
        assert bucket_length(5, None) == 5
        assert bucket_length(5, 1) == 5

    def test_bucket_key_replaces_only_the_time_axis(self):
        assert bucket_key((5, 10), 0, 4) == (8, 10)
        assert bucket_key((3, 5, 10), 1, 4) == (3, 8, 10)
        # No time axis: the key is the exact shape — fixed-shape
        # endpoints keep their per-shape grouping bit for bit.
        assert bucket_key((5, 10), None, 4) == (5, 10)

    def test_assemble_sequence_batch_pads_and_reports_lengths(self):
        rng = np.random.default_rng(0)
        samples = [rng.normal(size=(n, 3)) for n in (2, 5, 4)]
        x, rows, lengths = assemble_sequence_batch(samples, 0, 4)
        assert x.shape == (3, 8, 3)
        assert rows == 3
        assert lengths == [2, 5, 4]
        for i, sample in enumerate(samples):
            np.testing.assert_array_equal(x[i, :len(sample)], sample)
            assert not x[i, len(sample):].any()

    def test_assemble_sequence_batch_honours_pad_to_multiple(self):
        samples = [np.ones((3, 2)), np.ones((5, 2))]
        x, rows, lengths = assemble_sequence_batch(
            samples, 0, None, pad_to_multiple=4
        )
        assert x.shape == (4, 5, 2)
        assert rows == 2
        assert lengths == [3, 5]
        assert not x[2:].any()

    def test_assemble_sequence_batch_rejects_mismatched_features(self):
        with pytest.raises(ShapeError):
            assemble_sequence_batch(
                [np.ones((3, 2)), np.ones((4, 5))], 0, 4
            )

    def test_assemble_sequence_batch_rejects_empty_input(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            assemble_sequence_batch([], 0, 4)


# -- thread server ------------------------------------------------------------

class TestSequenceServing:
    def test_ragged_requests_serve_true_length_outputs(self):
        rng = np.random.default_rng(1)
        net = _rnn_net()
        server = InferenceServer(
            net, max_batch=8, max_wait_ms=20.0, bucket_multiple=4
        )
        lengths = [3, 5, 4, 7, 2, 8]
        samples = [rng.normal(size=(n, 10)) for n in lengths]
        with server:
            outs = server.infer_many(samples, timeout=30)
        for sample, y, n in zip(samples, outs, lengths):
            assert y.shape == (n, 8)
            reference = net.inference_forward(sample[None])[0]
            np.testing.assert_allclose(y, reference, atol=1e-12, rtol=0)
        stats = server.stats()
        # Bucketing really batched ragged lengths together: fewer
        # batches than requests, and the padding waste is visible.
        assert stats["batches"] < len(lengths)
        assert stats["padded_steps"] > 0

    def test_sequences_batch_without_bucketing_only_when_equal_length(self):
        rng = np.random.default_rng(2)
        net = _rnn_net(seed=1)
        server = InferenceServer(net, max_batch=8, max_wait_ms=20.0)
        samples = [rng.normal(size=(4, 10)) for _ in range(4)]
        samples.append(rng.normal(size=(6, 10)))
        with server:
            outs = server.infer_many(samples, timeout=30)
        for sample, y in zip(samples, outs):
            assert y.shape == sample.shape[:1] + (8,)
            reference = net.inference_forward(sample[None])[0]
            np.testing.assert_allclose(y, reference, atol=1e-12, rtol=0)
        # bucket_multiple unset: exact-length grouping, zero time padding.
        assert server.stats()["padded_steps"] == 0

    def test_fixed_shape_endpoints_are_untouched_by_bucketing(self):
        rng = np.random.default_rng(3)
        net = Sequential(
            BlockCirculantDense(16, 8, 4, seed=2), ReLU()
        )
        net.compile_inference()
        server = InferenceServer(
            net, max_batch=8, max_wait_ms=20.0, bucket_multiple=4
        )
        samples = [rng.normal(size=(16,)) for _ in range(5)]
        with server:
            outs = server.infer_many(samples, timeout=30)
        for sample, y in zip(samples, outs):
            assert y.shape == (8,)
        assert server.stats()["padded_steps"] == 0

    def test_apply_plan_hot_swaps_a_sequence_endpoint(self):
        rng = np.random.default_rng(4)
        net = _rnn_net(seed=3)
        registry = ModelRegistry()
        registry.register("default", net)
        server = InferenceServer(
            registry, max_batch=8, max_wait_ms=20.0, bucket_multiple=4
        )
        sample = rng.normal(size=(5, 10))
        with server:
            before = server.infer(sample, timeout=30)
            plan = ExecutionPlan.uniform(
                sum(1 for _ in net.planned_layers()), bits=16
            )
            swapped = registry.apply_plan("default", plan)
            after = server.infer(sample, timeout=30)
        np.testing.assert_allclose(
            before, net.inference_forward(sample[None])[0],
            atol=1e-12, rtol=0,
        )
        np.testing.assert_allclose(
            after, swapped.inference_forward(sample[None])[0],
            atol=1e-12, rtol=0,
        )
        # 16-bit quantisation must actually have changed the weights.
        assert not np.array_equal(before, after)


# -- multi-process server -----------------------------------------------------

@pytest.mark.mp
def test_mp_server_buckets_ragged_sequences():
    from repro.serving import MPInferenceServer

    rng = np.random.default_rng(5)
    net = Sequential(BlockCirculantGRU(10, 8, 4, seed=6))
    net.compile_inference()
    registry = ModelRegistry()
    registry.register("default", net)
    server = MPInferenceServer(
        registry, workers=2, max_batch=8, max_wait_ms=20.0,
        bucket_multiple=4,
    )
    lengths = [3, 5, 4, 7, 2, 8]
    samples = [rng.normal(size=(n, 10)) for n in lengths]
    with server:
        outs = server.infer_many(samples, timeout=60)
        stats = server.stats()
    for sample, y, n in zip(samples, outs, lengths):
        assert y.shape == (n, 8)
        reference = net.inference_forward(sample[None])[0]
        np.testing.assert_allclose(y, reference, atol=1e-12, rtol=0)
    assert stats["batches"] < len(lengths)
