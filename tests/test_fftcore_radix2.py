"""Unit and property tests for the from-scratch radix-2 FFT kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotPowerOfTwoError
from repro.fftcore import dft_direct, fft_radix2, idft_direct, ifft_radix2
from repro.fftcore.radix2 import bit_reverse_indices


class TestBitReversal:
    def test_size_8(self):
        expected = [0, 4, 2, 6, 1, 5, 3, 7]
        assert bit_reverse_indices(8).tolist() == expected

    def test_size_2(self):
        assert bit_reverse_indices(2).tolist() == [0, 1]

    def test_is_a_permutation(self):
        for n in (1, 2, 4, 16, 64, 256):
            indices = bit_reverse_indices(n)
            assert sorted(indices.tolist()) == list(range(n))

    def test_is_an_involution(self):
        # Reversing the bits twice restores the identity.
        for n in (4, 32, 128):
            rev = bit_reverse_indices(n)
            assert np.array_equal(rev[rev], np.arange(n))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(NotPowerOfTwoError):
            bit_reverse_indices(12)


class TestForwardFFT:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 32, 128, 1024])
    def test_matches_numpy(self, rng, n):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(fft_radix2(x), np.fft.fft(x), atol=1e-9)

    def test_matches_direct_dft(self, rng):
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        np.testing.assert_allclose(fft_radix2(x), dft_direct(x), atol=1e-8)

    def test_batched_matches_per_row(self, rng):
        x = rng.normal(size=(5, 3, 16)) + 1j * rng.normal(size=(5, 3, 16))
        batched = fft_radix2(x)
        for i in range(5):
            for j in range(3):
                np.testing.assert_allclose(
                    batched[i, j], fft_radix2(x[i, j]), atol=1e-10
                )

    def test_impulse_gives_flat_spectrum(self):
        x = np.zeros(16)
        x[0] = 1.0
        np.testing.assert_allclose(fft_radix2(x), np.ones(16), atol=1e-12)

    def test_constant_gives_dc_only(self):
        x = np.ones(32)
        spectrum = fft_radix2(x)
        assert spectrum[0] == pytest.approx(32.0)
        np.testing.assert_allclose(spectrum[1:], 0.0, atol=1e-10)

    def test_rejects_non_power_of_two(self, rng):
        with pytest.raises(NotPowerOfTwoError):
            fft_radix2(rng.normal(size=12))

    def test_does_not_mutate_input(self, rng):
        x = rng.normal(size=16) + 1j * rng.normal(size=16)
        copy = x.copy()
        fft_radix2(x)
        np.testing.assert_array_equal(x, copy)


class TestInverseFFT:
    @pytest.mark.parametrize("n", [2, 8, 64, 512])
    def test_roundtrip(self, rng, n):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(ifft_radix2(fft_radix2(x)), x, atol=1e-9)

    def test_matches_numpy(self, rng):
        x = rng.normal(size=(3, 32)) + 1j * rng.normal(size=(3, 32))
        np.testing.assert_allclose(
            ifft_radix2(x), np.fft.ifft(x, axis=-1), atol=1e-10
        )

    def test_matches_direct_idft(self, rng):
        x = rng.normal(size=16) + 1j * rng.normal(size=16)
        np.testing.assert_allclose(ifft_radix2(x), idft_direct(x), atol=1e-10)


class TestFFTProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        log_n=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, seed, log_n):
        rng = np.random.default_rng(seed)
        n = 2**log_n
        x = rng.normal(size=n)
        y = rng.normal(size=n)
        a, b = rng.normal(size=2)
        combined = fft_radix2(a * x + b * y)
        separate = a * fft_radix2(x) + b * fft_radix2(y)
        np.testing.assert_allclose(combined, separate, atol=1e-8)

    @given(
        seed=st.integers(0, 2**31 - 1),
        log_n=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_parseval(self, seed, log_n):
        # Energy is preserved up to the 1/n convention.
        rng = np.random.default_rng(seed)
        n = 2**log_n
        x = rng.normal(size=n)
        time_energy = float(np.sum(np.abs(x) ** 2))
        freq_energy = float(np.sum(np.abs(fft_radix2(x)) ** 2)) / n
        assert freq_energy == pytest.approx(time_energy, rel=1e-9)

    @given(
        seed=st.integers(0, 2**31 - 1),
        log_n=st.integers(min_value=1, max_value=7),
        shift=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_shift_theorem(self, seed, log_n, shift):
        # A circular shift multiplies the spectrum by a phase ramp.
        rng = np.random.default_rng(seed)
        n = 2**log_n
        x = rng.normal(size=n)
        shifted_spectrum = fft_radix2(np.roll(x, shift))
        phase = np.exp(-2j * np.pi * shift * np.arange(n) / n)
        np.testing.assert_allclose(
            shifted_spectrum, fft_radix2(x) * phase, atol=1e-8
        )

    @given(
        seed=st.integers(0, 2**31 - 1),
        log_n=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_real_input_hermitian_symmetry(self, seed, log_n):
        # The property the paper's Fig 10 exploits to skip half the work.
        rng = np.random.default_rng(seed)
        n = 2**log_n
        spectrum = fft_radix2(rng.normal(size=n))
        mirrored = np.conj(spectrum[(-np.arange(n)) % n])
        np.testing.assert_allclose(spectrum, mirrored, atol=1e-8)
