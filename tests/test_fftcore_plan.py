"""Tests for FFT plans: the recursive property of paper Fig 9."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NotPowerOfTwoError
from repro.fftcore import FFTPlan, fft_radix2


class TestRecursiveProperty:
    @pytest.mark.parametrize("n", [1, 2, 4, 16, 64, 256])
    def test_recursive_equals_iterative(self, rng, n):
        # Fig 9: a size-n FFT really is two size-n/2 FFTs plus butterflies.
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        plan = FFTPlan(n)
        np.testing.assert_allclose(
            plan.execute_recursive(x), fft_radix2(x), atol=1e-8
        )

    def test_recursive_batched(self, rng):
        x = rng.normal(size=(3, 32))
        plan = FFTPlan(32)
        np.testing.assert_allclose(
            plan.execute_recursive(x), np.fft.fft(x, axis=-1), atol=1e-8
        )

    def test_execute_is_production_kernel(self, rng):
        x = rng.normal(size=64)
        np.testing.assert_allclose(
            FFTPlan(64).execute(x), np.fft.fft(x), atol=1e-9
        )

    def test_wrong_size_rejected(self, rng):
        with pytest.raises(ValueError):
            FFTPlan(16).execute_recursive(rng.normal(size=8))


class TestStageDescription:
    def test_stage_count(self):
        assert FFTPlan(1).num_levels == 0
        assert FFTPlan(2).num_levels == 1
        assert FFTPlan(1024).num_levels == 10

    def test_stages_structure(self):
        stages = FFTPlan(16).stages()
        assert [s.level for s in stages] == [1, 2, 3, 4]
        assert [s.span for s in stages] == [2, 4, 8, 16]
        assert all(s.butterflies == 8 for s in stages)
        assert [s.distinct_twiddles for s in stages] == [1, 2, 4, 8]

    def test_total_butterflies(self):
        # (n/2) log2(n), the complexity the paper quotes.
        assert FFTPlan(8).total_butterflies == 12
        assert FFTPlan(1024).total_butterflies == 512 * 10


class TestDecomposition:
    def test_identity_decomposition(self):
        decomp = FFTPlan(64).decompose_onto(64)
        assert decomp.base_fft_passes == 1
        assert decomp.extra_levels == 0
        assert decomp.extra_butterflies == 0

    def test_half_size_block(self):
        # §4.1: one extra butterfly level combines two half-size FFTs.
        decomp = FFTPlan(64).decompose_onto(32)
        assert decomp.base_fft_passes == 2
        assert decomp.extra_levels == 1
        assert decomp.extra_butterflies == 32

    def test_small_block(self):
        decomp = FFTPlan(1024).decompose_onto(64)
        assert decomp.base_fft_passes == 16
        assert decomp.extra_levels == 4
        assert decomp.extra_butterflies == 4 * 512

    def test_butterfly_conservation(self):
        # Decomposed execution does exactly the same butterflies as a flat
        # execution: passes * butterflies(base) + extra = butterflies(n).
        plan = FFTPlan(512)
        for base in (2, 8, 64, 512):
            decomp = plan.decompose_onto(base)
            base_cost = decomp.base_fft_passes * FFTPlan(base).total_butterflies
            assert base_cost + decomp.extra_butterflies == plan.total_butterflies

    def test_block_larger_than_transform_rejected(self):
        with pytest.raises(ValueError):
            FFTPlan(32).decompose_onto(64)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(NotPowerOfTwoError):
            FFTPlan(48)
        with pytest.raises(NotPowerOfTwoError):
            FFTPlan(64).decompose_onto(3)
