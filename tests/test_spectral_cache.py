"""Tests for the spectral inference engine: SpectralWeightCache, the
cached-spectrum kernel fast path, compile_inference, and the FFT
plan/twiddle caches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circulant import (
    SpectralWeightCache,
    block_circulant_backward,
    block_circulant_conv_forward,
    block_circulant_forward,
    spectral_contract,
    weight_spectrum,
)
from repro.errors import BackendError, ShapeError
from repro.fftcore import clear_plan_caches, get_backend, get_plan
from repro.fftcore.radix2 import bit_reverse_indices, stage_twiddles
from repro.nn import (
    BlockCirculantConv2D,
    BlockCirculantDense,
    Dense,
    Flatten,
    Parameter,
    ReLU,
    Sequential,
    SGD,
)


class TestParameterVersioning:
    def test_assignment_bumps_version(self):
        param = Parameter(np.zeros(4))
        before = param.version
        param.value = np.ones(4)
        assert param.version == before + 1

    def test_augmented_assignment_bumps_version(self):
        # Optimizer steps are written as `param.value -= lr * grad`; Python
        # rewrites that as an assignment, which must bump the counter.
        param = Parameter(np.ones(4))
        before = param.version
        param.value -= 0.5
        assert param.version == before + 1

    def test_mark_updated(self):
        param = Parameter(np.ones(4))
        before = param.version
        param.value[0] = 3.0  # element write: not auto-detected
        param.mark_updated()
        assert param.version == before + 1


class TestCachedSpectrumKernels:
    def test_forward_matches_uncached(self, rng):
        w = rng.normal(size=(3, 5, 8))
        x = rng.normal(size=(4, 5, 8))
        wf = weight_spectrum(w)
        np.testing.assert_allclose(
            block_circulant_forward(w, x, cached_spectrum=wf),
            block_circulant_forward(w, x),
            atol=1e-12,
        )

    def test_backward_matches_uncached(self, rng):
        w = rng.normal(size=(3, 5, 8))
        x = rng.normal(size=(4, 5, 8))
        g = rng.normal(size=(4, 3, 8))
        wf = weight_spectrum(w)
        gw_c, gx_c = block_circulant_backward(w, x, g, cached_spectrum=wf)
        gw, gx = block_circulant_backward(w, x, g)
        np.testing.assert_allclose(gw_c, gw, atol=1e-12)
        np.testing.assert_allclose(gx_c, gx, atol=1e-12)

    def test_numpy_radix2_spectral_product_agreement(self, rng):
        # The same cached-spectrum product evaluated on both backends must
        # agree — the backend-certification contract of the repo, extended
        # to the fast path.
        w = rng.normal(size=(4, 4, 16))
        x = rng.normal(size=(3, 4, 16))
        out_np = block_circulant_forward(
            w, x, "numpy", cached_spectrum=weight_spectrum(w, "numpy")
        )
        out_r2 = block_circulant_forward(
            w, x, "radix2", cached_spectrum=weight_spectrum(w, "radix2")
        )
        np.testing.assert_allclose(out_np, out_r2, atol=1e-9)

    def test_cached_spectra_agree_across_backends(self, rng):
        w = rng.normal(size=(2, 3, 8))
        np.testing.assert_allclose(
            weight_spectrum(w, "numpy"), weight_spectrum(w, "radix2"),
            atol=1e-10,
        )

    def test_wrong_spectrum_shape_rejected(self, rng):
        w = rng.normal(size=(3, 5, 8))
        x = rng.normal(size=(4, 5, 8))
        with pytest.raises(ShapeError):
            block_circulant_forward(
                w, x, cached_spectrum=np.zeros((3, 5, 8), dtype=complex)
            )

    def test_weight_spectrum_rejects_flat_input(self, rng):
        with pytest.raises(ShapeError):
            weight_spectrum(rng.normal(size=(5, 8)))


class TestSpectralContract:
    """The shared FC/CONV contraction kernel of repro.circulant.ops."""

    def test_dense_matches_einsum(self, rng):
        wf = np.fft.rfft(rng.normal(size=(3, 5, 8)))
        xf = np.fft.rfft(rng.normal(size=(4, 5, 8)))
        np.testing.assert_allclose(
            spectral_contract(wf, xf),
            np.einsum("pqf,bqf->bpf", wf, xf),
            atol=1e-12,
        )

    def test_conv_matches_einsum(self, rng):
        wf = np.fft.rfft(rng.normal(size=(9, 3, 5, 8)))
        pf = np.fft.rfft(rng.normal(size=(4, 9, 5, 8)))
        np.testing.assert_allclose(
            spectral_contract(wf, pf),
            np.einsum("sijf,bsjf->bif", wf, pf),
            atol=1e-12,
        )

    def test_rejects_mismatched_shapes(self, rng):
        wf = np.zeros((3, 5, 8), dtype=complex)
        with pytest.raises(ShapeError):
            spectral_contract(wf, np.zeros((4, 6, 8), dtype=complex))
        with pytest.raises(ShapeError):
            spectral_contract(np.zeros((5, 8), dtype=complex),
                              np.zeros((4, 5, 8), dtype=complex))

    def test_conv_forward_cached_matches_uncached(self, rng):
        w = rng.normal(size=(9, 3, 5, 8))
        patches = rng.normal(size=(6, 9, 5, 8))
        wf = weight_spectrum(w)
        np.testing.assert_allclose(
            block_circulant_conv_forward(w, patches, cached_spectrum=wf),
            block_circulant_conv_forward(w, patches),
            atol=1e-12,
        )

    def test_conv_forward_backend_agreement(self, rng):
        w = rng.normal(size=(4, 2, 3, 16))
        patches = rng.normal(size=(3, 4, 3, 16))
        out_np = block_circulant_conv_forward(
            w, patches, "numpy", cached_spectrum=weight_spectrum(w, "numpy")
        )
        out_r2 = block_circulant_conv_forward(
            w, patches, "radix2", cached_spectrum=weight_spectrum(w, "radix2")
        )
        np.testing.assert_allclose(out_np, out_r2, atol=1e-9)

    def test_conv_wrong_spectrum_shape_rejected(self, rng):
        w = rng.normal(size=(9, 3, 5, 8))
        patches = rng.normal(size=(6, 9, 5, 8))
        with pytest.raises(ShapeError):
            block_circulant_conv_forward(
                w, patches, cached_spectrum=np.zeros((9, 3, 5, 8),
                                                     dtype=complex)
            )


class TestSpectralWeightCache:
    def test_hit_returns_same_array(self, rng):
        cache = SpectralWeightCache()
        param = Parameter(rng.normal(size=(2, 2, 8)))
        first = cache.spectrum(param)
        second = cache.spectrum(param)
        assert first is second
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_returned_spectrum_is_readonly(self, rng):
        cache = SpectralWeightCache()
        param = Parameter(rng.normal(size=(2, 2, 8)))
        spectrum = cache.spectrum(param)
        with pytest.raises((ValueError, RuntimeError)):
            spectrum[0, 0, 0] = 1.0

    def test_fast_path_layout_is_blas_ready(self, rng):
        # The cache stores frequency-major memory so the kernel's
        # transpose(2, 0, 1) is a zero-copy C-contiguous view.
        cache = SpectralWeightCache()
        param = Parameter(rng.normal(size=(3, 5, 8)))
        spectrum = cache.spectrum(param)
        assert spectrum.transpose(2, 0, 1).flags["C_CONTIGUOUS"]
        np.testing.assert_allclose(
            spectrum, weight_spectrum(param.value), atol=1e-12
        )

    def test_invalidated_after_optimizer_step(self, rng):
        layer = BlockCirculantDense(16, 16, 4, seed=0)
        cache = SpectralWeightCache()
        stale = cache.spectrum(layer.weight)
        x = rng.normal(size=(2, 16))
        layer.forward(x)
        layer.zero_grad()
        layer.backward(rng.normal(size=(2, 16)))
        SGD(layer.parameters(), lr=0.5).step()
        fresh = cache.spectrum(layer.weight)
        assert cache.stats()["misses"] == 2
        assert not np.allclose(stale, fresh)
        np.testing.assert_allclose(
            fresh, weight_spectrum(layer.weight.value), atol=1e-12
        )

    def test_entries_keyed_per_backend(self, rng):
        cache = SpectralWeightCache()
        param = Parameter(rng.normal(size=(2, 2, 8)))
        cache.spectrum(param, "numpy")
        cache.spectrum(param, "radix2")
        assert len(cache) == 2

    def test_invalidate_single_and_all(self, rng):
        cache = SpectralWeightCache()
        a = Parameter(rng.normal(size=(2, 2, 8)))
        b = Parameter(rng.normal(size=(2, 2, 8)))
        cache.spectrum(a)
        cache.spectrum(b)
        cache.invalidate(a)
        assert len(cache) == 1
        cache.invalidate()
        assert len(cache) == 0

    def test_conv_weight_spectrum_cached(self, rng):
        layer = BlockCirculantConv2D(4, 4, 3, block_size=2, seed=0)
        cache = SpectralWeightCache()
        spectrum = cache.spectrum(layer.weight)
        assert spectrum.shape == (9, 2, 2, 2)  # (r², pp, qc, k//2+1)
        assert cache.spectrum(layer.weight) is spectrum

    def test_conv_fast_path_layout_is_blas_ready(self, rng):
        # CONV spectra are stored (f, p, r², q)-contiguous so the shared
        # kernel's transpose + fold-into-GEMM reshape is a zero-copy view.
        cache = SpectralWeightCache()
        param = Parameter(rng.normal(size=(9, 3, 5, 8)))
        spectrum = cache.spectrum(param)
        s, p, q, f = spectrum.shape
        folded = spectrum.transpose(3, 1, 0, 2)
        assert folded.flags["C_CONTIGUOUS"]
        assert folded.reshape(f, p, s * q).base is not None  # view, no copy
        np.testing.assert_allclose(
            spectrum, weight_spectrum(param.value), atol=1e-12
        )


class TestCompileInference:
    def test_dense_layer_output_equality(self, rng):
        layer = BlockCirculantDense(20, 12, 4, seed=3)
        x = rng.normal(size=(5, 20))
        expected = layer.eval().forward(x)
        layer.compile_inference()
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-12)
        assert layer.spectral_cache.stats()["hits"] >= 1

    def test_network_output_equality(self, rng):
        net = Sequential(
            BlockCirculantConv2D(3, 8, 3, block_size=4, padding=1, seed=0),
            ReLU(),
            Flatten(),
            BlockCirculantDense(8 * 6 * 6, 32, 8, seed=1),
            ReLU(),
            Dense(32, 10, seed=2),
        )
        x = rng.normal(size=(2, 3, 6, 6))
        expected = net.eval()(x)
        net.compile_inference()
        np.testing.assert_allclose(net(x), expected, atol=1e-12)

    def test_conv_layer_bit_identical(self, rng):
        # The compiled CONV forward and the eager eval forward run the
        # same shared GEMM kernel on identically-laid-out spectra, so
        # the outputs must agree to the last bit, not just to tolerance.
        layer = BlockCirculantConv2D(6, 10, 3, block_size=4, padding=1,
                                     seed=3)
        x = rng.normal(size=(2, 6, 5, 5))
        expected = layer.eval().forward(x)
        layer.compile_inference()
        np.testing.assert_array_equal(layer.forward(x), expected)
        assert layer.spectral_cache.stats()["hits"] >= 1

    def test_conv_compile_on_radix2_backend(self, rng):
        layer_np = BlockCirculantConv2D(4, 4, 3, block_size=2, seed=5)
        layer_r2 = BlockCirculantConv2D(4, 4, 3, block_size=2, seed=5,
                                        backend="radix2")
        x = rng.normal(size=(2, 4, 4, 4))
        layer_np.compile_inference()
        layer_r2.compile_inference()
        np.testing.assert_allclose(
            layer_np.forward(x), layer_r2.forward(x), atol=1e-9
        )

    def test_conv_training_after_compile_stays_correct(self, rng):
        layer = BlockCirculantConv2D(4, 4, 3, block_size=2, padding=1,
                                     seed=0)
        x = rng.normal(size=(2, 4, 4, 4))
        layer.compile_inference()
        before = layer.forward(x)
        layer.train()
        out = layer.forward(x)
        layer.zero_grad()
        layer.backward(out)
        SGD(layer.parameters(), lr=0.3).step()
        layer.eval()
        after = layer.forward(x)
        assert not np.allclose(after, before)
        cache = layer.spectral_cache
        layer.spectral_cache = None
        try:
            eager = layer.forward(x)
        finally:
            layer.spectral_cache = cache
        np.testing.assert_array_equal(after, eager)

    def test_cache_shared_across_layers(self):
        net = Sequential(
            BlockCirculantDense(16, 16, 4, seed=0),
            ReLU(),
            BlockCirculantDense(16, 8, 4, seed=1),
        )
        net.compile_inference()
        assert net.layers[0].spectral_cache is net.spectral_cache
        assert net.layers[2].spectral_cache is net.spectral_cache
        assert len(net.spectral_cache) == 2

    def test_training_after_compile_stays_correct(self, rng):
        # compile, then train a step, then eval again: the version bump
        # must refresh the spectrum so outputs track the new weights.
        net = Sequential(BlockCirculantDense(16, 16, 4, seed=0))
        x = rng.normal(size=(3, 16))
        net.compile_inference()
        before = net(x)
        net.train()
        out = net(x)
        net.zero_grad()
        net.backward(out - rng.normal(size=out.shape))
        SGD(net.parameters(), lr=0.2).step()
        net.eval()
        after = net(x)
        assert not np.allclose(after, before)
        layer = net.layers[0]
        cache = layer.spectral_cache
        layer.spectral_cache = None
        try:
            uncached = net(x)
        finally:
            layer.spectral_cache = cache
        np.testing.assert_allclose(after, uncached, atol=1e-12)

    def test_training_mode_version_checks_cache(self, rng):
        # Training no longer disables the cache outright: unchanged
        # weights hit the cached spectrum (multi-forward accumulation,
        # eval-within-train), and a weight update invalidates by version.
        layer = BlockCirculantDense(16, 16, 4, seed=0)
        layer.compile_inference()
        layer.train()
        x = rng.normal(size=(2, 16))
        hits_before = layer.spectral_cache.stats()["hits"]
        layer.forward(x)
        layer.forward(x)
        assert layer.spectral_cache.stats()["hits"] == hits_before + 2
        misses_before = layer.spectral_cache.stats()["misses"]
        layer.weight.value = layer.weight.value * 0.5
        layer.forward(x)
        assert layer.spectral_cache.stats()["misses"] == misses_before + 1

    def test_compile_on_radix2_backend(self, rng):
        layer_np = BlockCirculantDense(16, 16, 4, seed=7)
        layer_r2 = BlockCirculantDense(16, 16, 4, seed=7, backend="radix2")
        x = rng.normal(size=(2, 16))
        layer_np.compile_inference()
        layer_r2.compile_inference()
        np.testing.assert_allclose(
            layer_np.forward(x), layer_r2.forward(x), atol=1e-9
        )


class TestQuantizedServing:
    """The fixed-point serving mode: quantized_view(...).compile_inference()."""

    @staticmethod
    def _network():
        return Sequential(
            BlockCirculantConv2D(3, 8, 3, block_size=4, padding=1, seed=0),
            ReLU(),
            Flatten(),
            BlockCirculantDense(8 * 6 * 6, 16, 8, seed=1),
        )

    def test_compiled_view_bit_identical(self, rng):
        from repro.quant import quantized_view

        net = self._network()
        x = rng.normal(size=(2, 3, 6, 6))
        view = quantized_view(net, 16, 16)
        expected = view.eval()(x)
        view.compile_inference()
        np.testing.assert_array_equal(view(x), expected)
        # Both block-circulant layers joined the shared cache.
        assert len(view.spectral_cache) == 2

    def test_view_carries_no_cache_from_compiled_original(self, rng):
        from repro.quant import quantized_view

        net = self._network().compile_inference()
        view = quantized_view(net, 16)
        assert view.spectral_cache is None
        for layer in view.layers:
            assert getattr(layer, "spectral_cache", None) is None
        # The original keeps serving from its own (unquantised) cache.
        assert net.spectral_cache is not None
        assert len(net.spectral_cache) == 2

    def test_spectra_computed_from_quantised_weights(self, rng):
        from repro.quant import quantized_view

        net = self._network()
        view = quantized_view(net, 6).compile_inference()
        layer = view.layers[0]
        np.testing.assert_array_equal(
            view.spectral_cache.spectrum(layer.weight, layer.backend),
            weight_spectrum(layer.weight.value),
        )

    def test_format_change_mid_serving_refreshes_spectra(self, rng):
        # Re-quantising the served view (e.g. dropping from the 16-bit
        # datapath to the 4-bit near-threshold mode) reassigns every
        # Parameter.value; the version bump must lazily refresh the
        # cached spectra so compiled outputs track the new format.
        from repro.quant import quantize_network_weights, quantized_view

        net = self._network()
        x = rng.normal(size=(2, 3, 6, 6))
        view = quantized_view(net, 16, 16).compile_inference()
        out16 = view(x)
        misses_before = view.spectral_cache.stats()["misses"]
        quantize_network_weights(view, 6)
        out6 = view(x)
        assert view.spectral_cache.stats()["misses"] == misses_before + 2
        assert not np.allclose(out16, out6)
        # The refreshed compiled path still matches an eager evaluation.
        caches = []
        for layer in view.layers:
            if getattr(layer, "spectral_cache", None) is not None:
                caches.append((layer, layer.spectral_cache))
                layer.spectral_cache = None
        try:
            eager = view(x)
        finally:
            for layer, cache in caches:
                layer.spectral_cache = cache
        np.testing.assert_array_equal(out6, eager)


class TestBackendValidationAtConstruction:
    def test_dense_rejects_unknown_backend(self):
        with pytest.raises(BackendError) as exc:
            BlockCirculantDense(8, 8, 4, backend="fftw")
        assert "numpy" in str(exc.value) and "radix2" in str(exc.value)

    def test_conv_rejects_unknown_backend(self):
        with pytest.raises(BackendError) as exc:
            BlockCirculantConv2D(4, 4, 3, block_size=2, backend="fftw")
        assert "numpy" in str(exc.value) and "radix2" in str(exc.value)

    def test_known_backends_accepted(self):
        BlockCirculantDense(8, 8, 4, backend="numpy")
        BlockCirculantDense(8, 8, 4, backend="radix2")
        BlockCirculantDense(8, 8, 4, backend=None)


class TestPlanAndTwiddleCaches:
    def test_get_plan_memoised(self):
        assert get_plan(64) is get_plan(64)

    def test_backend_plan_cache(self):
        backend = get_backend("radix2")
        before = backend.plan_cache_size()
        plan = backend.plan(4096)
        assert backend.plan(4096) is plan
        assert backend.plan_cache_size() >= before

    def test_backend_plan_warms_all_tables(self):
        # The serving warm-up contract: plan(n) must materialise every
        # constant table a size-n fft/rfft/irfft will read, including the
        # half-size complex tables of the real-FFT packing trick.
        from repro.fftcore.radix2 import _BIT_REVERSE_CACHE, _STAGE_TWIDDLE_CACHE
        from repro.fftcore.real import _IRFFT_TABLE_CACHE, _RFFT_TABLE_CACHE

        clear_plan_caches()
        get_backend("radix2").plan(64)
        assert 64 in _BIT_REVERSE_CACHE and 64 in _STAGE_TWIDDLE_CACHE
        assert 32 in _BIT_REVERSE_CACHE and 32 in _STAGE_TWIDDLE_CACHE
        assert 64 in _RFFT_TABLE_CACHE and 64 in _IRFFT_TABLE_CACHE

    def test_stage_twiddles_cached_and_correct(self):
        tables = stage_twiddles(16)
        assert stage_twiddles(16) is tables
        assert [t.shape[0] for t in tables] == [1, 2, 4, 8]
        np.testing.assert_allclose(
            tables[-1], np.exp(-2j * np.pi * np.arange(8) / 16), atol=1e-12
        )

    def test_cached_tables_are_readonly(self):
        assert not bit_reverse_indices(32).flags.writeable
        assert not stage_twiddles(32)[-1].flags.writeable

    def test_radix2_results_unchanged_by_caching(self, rng):
        # Transform twice (cold cache, then warm) and against numpy.
        clear_plan_caches()
        be = get_backend("radix2")
        x = rng.normal(size=(3, 64))
        cold = be.rfft(x)
        warm = be.rfft(x)
        np.testing.assert_allclose(cold, warm, atol=0)
        np.testing.assert_allclose(cold, np.fft.rfft(x), atol=1e-10)

    def test_clear_plan_caches(self):
        backend = get_backend("radix2")
        backend.plan(128)
        clear_plan_caches()
        assert backend.plan_cache_size() == 0
        # Caches repopulate transparently afterwards.
        assert backend.plan(128).n == 128

    def test_plan_twiddle_table_matches_rom(self):
        plan = get_plan(32)
        assert plan.twiddle_table() is stage_twiddles(32)
        assert plan.bit_reversal() is bit_reverse_indices(32)
