"""Tests for model->platform mapping, Perf/Power and Algorithm 3."""

from __future__ import annotations

import pytest

from repro.arch import (
    DesignPoint,
    PerfPowerModel,
    map_model,
    optimize_design,
    ternary_search_int,
)
from repro.arch.platforms import (
    arm_cortex_a9,
    asic_45nm,
    asic_45nm_near_threshold,
    best_reference_efficiency,
    fpga_cyclone_v,
)
from repro.errors import ConfigurationError
from repro.models import (
    CompressionPlan,
    alexnet_spec,
    default_alexnet_fc_plan,
    default_alexnet_full_plan,
    lenet5_spec,
    default_lenet5_plan,
)
from repro.models.descriptors import DenseSpec, ModelSpec


def _fc_model(m: int = 2048, n: int = 2048) -> ModelSpec:
    return ModelSpec(
        name="fc_bench", input_shape=(1, 1, n),
        layers=(DenseSpec("fc", n, m),),
    )


class TestMapModel:
    def test_report_structure(self):
        report = map_model(
            alexnet_spec(), default_alexnet_full_plan(), fpga_cyclone_v()
        )
        assert len(report.layers) == len(alexnet_spec().layers)
        assert report.latency_s > 0
        assert report.power_w > report.static_power_w
        assert report.equivalent_gops > 0
        assert report.fits_on_chip

    def test_equivalent_ops_are_dense_ops(self):
        spec = alexnet_spec()
        report = map_model(spec, default_alexnet_full_plan(), fpga_cyclone_v())
        assert report.dense_ops == 2 * spec.total_macs

    def test_compression_speeds_up_inference(self):
        spec = alexnet_spec()
        platform = fpga_cyclone_v()
        uncompressed = map_model(spec, CompressionPlan(weight_bits=32), platform)
        compressed = map_model(spec, default_alexnet_full_plan(), platform)
        assert compressed.latency_s < uncompressed.latency_s

    def test_uncompressed_alexnet_overflows_to_dram(self):
        # §4.4's storage ladder on the low-power Cyclone V: uncompressed
        # AlexNet (244 MB) and even the FC-only plan (~7 MB, which needs a
        # Stratix/Virtex-class part per the paper) overflow; the FC+CONV
        # plan (<0.5 MB) fits on-chip.
        spec = alexnet_spec()
        platform = fpga_cyclone_v()
        report = map_model(spec, CompressionPlan(weight_bits=32), platform)
        assert not report.fits_on_chip
        fc_only = map_model(spec, default_alexnet_fc_plan(), platform)
        assert not fc_only.fits_on_chip
        full = map_model(spec, default_alexnet_full_plan(), platform)
        assert full.fits_on_chip

    def test_dram_overflow_costs_energy(self):
        # The §1 motivation: off-chip weights dominate energy.
        spec = alexnet_spec()
        platform = fpga_cyclone_v()
        off_chip = map_model(spec, CompressionPlan(weight_bits=32), platform)
        on_chip = map_model(spec, default_alexnet_fc_plan(), platform)
        off_weight_energy = sum(l.memory_energy_j for l in off_chip.layers)
        on_weight_energy = sum(l.memory_energy_j for l in on_chip.layers)
        assert off_weight_energy > 10 * on_weight_energy

    def test_asic_more_efficient_than_fpga(self):
        spec = alexnet_spec()
        plan = default_alexnet_full_plan()
        fpga = map_model(spec, plan, fpga_cyclone_v())
        asic = map_model(spec, plan, asic_45nm())
        assert asic.gops_per_watt > 5 * fpga.gops_per_watt

    def test_near_threshold_point(self):
        spec = alexnet_spec()
        plan = default_alexnet_full_plan()
        base = map_model(spec, plan, asic_45nm())
        nt = map_model(spec, plan, asic_45nm_near_threshold())
        factor = nt.gops_per_watt / base.gops_per_watt
        assert 12.0 < factor < 25.0  # the paper's ~17x

    def test_intra_level_pipelining_trades_frequency(self):
        spec = lenet5_spec()
        plan = default_lenet5_plan()
        inter = map_model(spec, plan, fpga_cyclone_v(), scheme="inter_level")
        intra = map_model(spec, plan, fpga_cyclone_v(), scheme="intra_level")
        # Double clock, slightly more cycles -> lower latency overall.
        assert intra.latency_s < inter.latency_s

    def test_describe_contains_key_metrics(self):
        report = map_model(
            lenet5_spec(), default_lenet5_plan(), fpga_cyclone_v()
        )
        text = report.describe()
        assert "GOPS" in text and "ms/image" in text


class TestPerfPowerModel:
    def _model(self) -> PerfPowerModel:
        return PerfPowerModel(
            fpga_cyclone_v(), _fc_model(), CompressionPlan(
                block_sizes={"fc": 128}
            ),
        )

    def test_performance_monotone_in_p(self):
        model = self._model()
        assert model.performance(32, 1) >= model.performance(8, 1)

    def test_power_increases_with_units(self):
        model = self._model()
        assert model.power(64, 2) > model.power(8, 1)

    def test_objective_and_cache(self):
        model = self._model()
        first = model.objective(16, 1)
        second = model.objective(16, 1)
        assert first == second

    def test_invalid_point(self):
        with pytest.raises(ConfigurationError):
            self._model().evaluate(0, 1)


class TestTernarySearch:
    def test_finds_peak_of_concave_function(self):
        assert ternary_search_int(lambda x: -(x - 37) ** 2, 1, 100) == 37

    def test_peak_at_boundary(self):
        assert ternary_search_int(lambda x: x, 1, 50) == 50
        assert ternary_search_int(lambda x: -x, 1, 50) == 1

    def test_tiny_range(self):
        assert ternary_search_int(lambda x: -(x - 2) ** 2, 1, 3) == 2
        assert ternary_search_int(lambda x: 1.0, 5, 5) == 5

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ternary_search_int(lambda x: x, 10, 5)

    def test_plateau_tolerated(self):
        result = ternary_search_int(lambda x: min(x, 10), 1, 40)
        assert result >= 10


class TestAlgorithm3:
    def test_returns_valid_design_point(self):
        model = PerfPowerModel(
            fpga_cyclone_v(), _fc_model(), CompressionPlan(
                block_sizes={"fc": 128}
            ),
        )
        point = optimize_design(model, p_max=64)
        assert isinstance(point, DesignPoint)
        assert 1 <= point.parallelism <= 64
        assert 1 <= point.depth <= 3
        assert point.objective > 0

    def test_chosen_point_beats_corners(self):
        model = PerfPowerModel(
            fpga_cyclone_v(), _fc_model(), CompressionPlan(
                block_sizes={"fc": 128}
            ),
        )
        point = optimize_design(model, p_max=64)
        # Algorithm 3 is a heuristic (p first, then d) — it must at least
        # beat the trivial corner configurations on the same axis order.
        assert point.objective >= model.objective(1, 1)


class TestProcessorModel:
    def test_runtime_formula(self):
        arm = arm_cortex_a9(frequency_hz=1e9, effective_ops_per_cycle=2.0)
        assert arm.runtime_s(2e9) == pytest.approx(1.0)

    def test_cache_penalty_applies_to_large_ffts(self):
        arm = arm_cortex_a9()
        fast = arm.runtime_s(1e6, fft_size=64)
        slow = arm.runtime_s(1e6, fft_size=1024)
        assert slow == pytest.approx(fast * arm.cache_penalty)

    def test_energy_at_constant_power(self):
        arm = arm_cortex_a9(power_w=2.0)
        assert arm.energy_j(arm.ops_per_second) == pytest.approx(2.0)

    def test_negative_ops_rejected(self):
        with pytest.raises(ConfigurationError):
            arm_cortex_a9().runtime_s(-1.0)


class TestReferenceData:
    def test_best_reference_is_highest_ee(self):
        best = best_reference_efficiency()
        from repro.arch.platforms import ASIC_REFERENCES

        assert best.gops_per_watt == max(
            r.gops_per_watt for r in ASIC_REFERENCES
        )
