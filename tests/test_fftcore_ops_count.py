"""Tests for FFT operation counters (inputs to the architecture model)."""

from __future__ import annotations

import pytest

from repro.errors import NotPowerOfTwoError
from repro.fftcore import (
    complex_fft_butterflies,
    complex_fft_ops,
    real_fft_butterflies,
    real_fft_ops,
)
from repro.fftcore.ops_count import (
    BUTTERFLY_REAL_OPS,
    elementwise_complex_mult_ops,
)


class TestButterflyCounts:
    def test_complex_formula(self):
        # (n/2) log2(n).
        assert complex_fft_butterflies(2) == 1
        assert complex_fft_butterflies(8) == 12
        assert complex_fft_butterflies(1024) == 5120

    def test_real_is_half_of_complex(self):
        # The Fig 10 symmetry saving is exactly 2x.
        for n in (4, 16, 128, 4096):
            assert real_fft_butterflies(n) * 2 == complex_fft_butterflies(n)

    def test_trivial_sizes(self):
        assert complex_fft_butterflies(1) == 0
        assert real_fft_butterflies(1) == 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(NotPowerOfTwoError):
            complex_fft_butterflies(12)
        with pytest.raises(NotPowerOfTwoError):
            real_fft_butterflies(10)

    def test_asymptotic_growth_is_n_log_n(self):
        # Doubling n slightly more than doubles the work — n log n, not n^2.
        for n in (64, 256, 1024):
            ratio = complex_fft_butterflies(2 * n) / complex_fft_butterflies(n)
            assert 2.0 < ratio < 2.5


class TestOpBudgets:
    def test_real_ops_consistent_with_butterflies(self):
        for n in (8, 64, 512):
            count = complex_fft_ops(n)
            assert count.total_real_ops == count.butterflies * BUTTERFLY_REAL_OPS
            assert count.real_mults == count.butterflies * 4
            assert count.real_adds == count.butterflies * 6

    def test_real_fft_memory_traffic_halved(self):
        # Packed representation moves n/2 complex = n real words per level.
        full = complex_fft_ops(64)
        real = real_fft_ops(64)
        assert real.words_read * 2 == full.words_read
        assert real.words_written * 2 == full.words_written

    def test_total_words(self):
        count = complex_fft_ops(16)
        assert count.total_words == count.words_read + count.words_written

    def test_elementwise_complex_mult(self):
        mults, adds = elementwise_complex_mult_ops(10)
        assert mults == 40
        assert adds == 20
        assert elementwise_complex_mult_ops(0) == (0, 0)

    def test_elementwise_rejects_negative(self):
        with pytest.raises(ValueError):
            elementwise_complex_mult_ops(-1)
