"""Multi-process serving tests (repro.serving.multiproc).

Everything here spawns real worker processes, so the module is marked
``mp`` and excluded from tier-1 (see ``pytest.ini``); CI runs it as a
dedicated job with a hard timeout and faulthandler enabled. Fault
injection (crashes, shedding, deadlines) lives in
``tests/test_serving_faults.py``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import BlockCirculantDense, ReLU, Sequential
from repro.serving import MPInferenceServer, ModelRegistry
from repro.store import save_artifact

pytestmark = pytest.mark.mp


def _fc_net(seed: int = 0) -> Sequential:
    net = Sequential(
        BlockCirculantDense(32, 32, 8, seed=seed),
        ReLU(),
        BlockCirculantDense(32, 16, 4, seed=seed + 1),
    )
    net.compile_inference()
    return net


class TestMPInferenceServer:
    def test_outputs_bit_identical_to_direct_forward(self, rng):
        # max_batch=1 keeps every served forward a single-row GEMM, the
        # exact computation of the direct single-row reference (larger
        # batches are correct too, but BLAS column blocking makes them
        # only allclose, not bitwise — see the batched test below).
        net = _fc_net()
        xs = rng.normal(size=(6, 32))
        expected = [net.inference_forward(x[None])[0] for x in xs]
        with MPInferenceServer(net, workers=2, max_batch=1,
                               max_wait_ms=0.0) as server:
            ys = server.infer_many(list(xs), timeout=60.0)
        for y, want in zip(ys, expected):
            np.testing.assert_array_equal(y, want)

    def test_batched_outputs_match_direct_forward(self, rng):
        net = _fc_net()
        xs = rng.normal(size=(16, 32))
        expected = net.inference_forward(xs)
        with MPInferenceServer(net, workers=2, max_batch=8,
                               max_wait_ms=5.0) as server:
            ys = server.infer_many(list(xs), timeout=60.0)
            stats = server.stats()
        np.testing.assert_allclose(np.stack(ys), expected, atol=1e-10)
        assert stats["responses"] == 16
        assert stats["mean_batch_size"] > 1.0  # batching actually engaged

    def test_multiple_endpoints(self, rng):
        registry = ModelRegistry()
        net_a, net_b = _fc_net(0), _fc_net(9)
        registry.register("a", net_a)
        registry.register("b", net_b)
        x = rng.normal(size=32)
        with MPInferenceServer(registry, workers=2, max_batch=1,
                               max_wait_ms=0.0) as server:
            ya = server.infer(x, endpoint="a", timeout=60.0)
            yb = server.infer(x, endpoint="b", timeout=60.0)
        np.testing.assert_array_equal(
            ya, net_a.inference_forward(x[None])[0]
        )
        np.testing.assert_array_equal(
            yb, net_b.inference_forward(x[None])[0]
        )
        assert not np.array_equal(ya, yb)

    def test_response_telemetry(self, rng):
        net = _fc_net()
        x = rng.normal(size=32)
        with MPInferenceServer(net, workers=1, max_batch=1,
                               max_wait_ms=0.0) as server:
            response = server.submit(x).result(60.0)
        assert response.endpoint == "default"
        assert response.generation == 0
        assert response.batch_size == 1
        assert response.latency_ms >= response.queued_ms >= 0.0

    def test_submit_requires_running_server(self, rng):
        server = MPInferenceServer(_fc_net(), workers=1)
        with pytest.raises(ConfigurationError, match="not running"):
            server.submit(rng.normal(size=32))

    def test_restart_after_stop(self, rng):
        net = _fc_net()
        x = rng.normal(size=32)
        expected = net.inference_forward(x[None])[0]
        server = MPInferenceServer(net, workers=1, max_batch=1,
                                   max_wait_ms=0.0)
        for _ in range(2):
            with server:
                np.testing.assert_array_equal(
                    server.infer(x, timeout=60.0), expected
                )

    def test_pipe_sized_payloads_under_concurrent_load(self, rng):
        # Regression: requests and responses bigger than an OS pipe
        # buffer (64 KiB on Linux) make every send a blocking call that
        # only completes once the peer drains. An earlier dispatcher
        # held the server lock across task_conn.send, so a worker
        # blocked mid-way through a large result, the collector blocked
        # on the lock to drain it, and the dispatcher blocked on the
        # full task pipe — a three-way deadlock. Task sends now happen
        # outside the lock; this load must finish, not wedge.
        net = Sequential(BlockCirculantDense(8192, 8192, 512, seed=3))
        net.compile_inference()
        xs = rng.normal(size=(24, 8192))  # 64 KiB per row, each way
        expected = net.inference_forward(xs[:1])[0]
        with MPInferenceServer(net, workers=2, max_batch=1,
                               max_wait_ms=0.0,
                               queue_depth=64) as server:
            futures = [server.submit(x) for x in xs]
            ys = [f.result(120.0).y for f in futures]
        np.testing.assert_array_equal(ys[0], expected)
        assert len(ys) == 24
        for y in ys:
            assert y.shape == (8192,)

    def test_endpoint_registered_after_start_is_served(self, rng):
        registry = ModelRegistry()
        net_a = _fc_net(0)
        registry.register("a", net_a)
        x = rng.normal(size=32)
        with MPInferenceServer(registry, workers=1, max_batch=1,
                               max_wait_ms=0.0) as server:
            net_b = _fc_net(9)
            registry.register("b", net_b)
            yb = server.infer(x, endpoint="b", timeout=60.0)
        np.testing.assert_array_equal(
            yb, net_b.inference_forward(x[None])[0]
        )


class TestMPHotSwap:
    """Cross-process swap atomicity: old-or-new, never mixed."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_concurrent_swaps_never_mix_generations(
        self, tmp_path, workers
    ):
        # N client threads hammer the server while the endpoint flips
        # between two known-different artifacts. Every response must be
        # bit-identical to the output of the generation it claims
        # (max_batch=1 makes the comparison exact: single-row forwards).
        # Even generations are net_a (gen 0 is the initial registration,
        # and the swap sequence alternates b, a, b, ...).
        net_a, net_b = _fc_net(0), _fc_net(7)
        x = np.random.default_rng(1).normal(size=32)
        ya = net_a.inference_forward(x[None])[0]
        yb = net_b.inference_forward(x[None])[0]
        assert not np.array_equal(ya, yb)
        path_a, path_b = tmp_path / "a", tmp_path / "b"
        save_artifact(net_a, path_a, codec="identity")
        save_artifact(net_b, path_b, codec="identity")

        server = MPInferenceServer(net_a, workers=workers, max_batch=1,
                                   max_wait_ms=0.0)
        with server:
            # Warm every worker before the clock starts: a freshly spawned
            # child spends a while importing, and dispatch is round-robin,
            # so one sequential infer per worker guarantees they are all
            # serving. Without this, on a slow box the hammer threads'
            # first (gen-0) requests outlive the whole swap sequence.
            for _ in range(workers):
                np.testing.assert_array_equal(
                    server.infer(x, timeout=120.0), ya
                )
            stop = threading.Event()
            mixed: list[tuple[int, float]] = []
            generations: set[int] = set()

            def hammer():
                while not stop.is_set():
                    response = server.submit(x).result(60.0)
                    generations.add(response.generation)
                    want = ya if response.generation % 2 == 0 else yb
                    if not np.array_equal(response.y, want):
                        mixed.append((
                            response.generation,
                            float(np.max(np.abs(response.y - want))),
                        ))

            threads = [
                threading.Thread(target=hammer) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for path in (path_b, path_a, path_b, path_a):
                time.sleep(0.15)
                server.swap_from_store("default", path)
            time.sleep(0.15)
            stop.set()
            for thread in threads:
                thread.join()
            stats = server.stats()

        assert not mixed, (
            f"responses not bit-identical to their generation: "
            f"{mixed[:5]} ({len(mixed)} total)"
        )
        assert stats["errors"] == 0
        assert len(generations) >= 2, (
            "the hammer threads never observed a swap; the test lost its "
            f"subject (generations seen: {sorted(generations)})"
        )

    def test_swap_from_store_bumps_generation_and_serves_new(
        self, tmp_path, rng
    ):
        net_a, net_b = _fc_net(0), _fc_net(7)
        x = rng.normal(size=32)
        path_b = tmp_path / "b"
        save_artifact(net_b, path_b, codec="identity")
        with MPInferenceServer(net_a, workers=2, max_batch=1,
                               max_wait_ms=0.0) as server:
            first = server.submit(x).result(60.0)
            server.swap_from_store("default", path_b)
            second = server.submit(x).result(60.0)
        assert first.generation == 0
        assert second.generation == 1
        np.testing.assert_array_equal(
            first.y, net_a.inference_forward(x[None])[0]
        )
        np.testing.assert_array_equal(
            second.y, net_b.inference_forward(x[None])[0]
        )
