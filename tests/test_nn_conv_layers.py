"""Gradient and equivalence tests for Conv2D and BlockCirculantConv2D."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import BlockCirculantConv2D, Conv2D
from repro.nn.im2col import col2im, conv_output_size, im2col
from tests.conftest import assert_layer_gradients


class TestIm2col:
    def test_output_size_formula(self):
        assert conv_output_size(28, 5, 1, 0) == 24
        assert conv_output_size(28, 5, 1, 2) == 28
        assert conv_output_size(227, 11, 4, 0) == 55

    def test_invalid_geometry(self):
        with pytest.raises(ShapeError):
            conv_output_size(3, 5, 1, 0)

    def test_patches_content(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        cols = im2col(x, 2, stride=2, padding=0)
        assert cols.shape == (1, 4, 1, 2, 2)
        np.testing.assert_allclose(cols[0, 0, 0], x[0, 0, 0:2, 0:2])
        np.testing.assert_allclose(cols[0, 3, 0], x[0, 0, 2:4, 2:4])

    def test_padding_zeros(self, rng):
        x = rng.normal(size=(1, 1, 2, 2))
        cols = im2col(x, 3, stride=1, padding=1)
        assert cols.shape == (1, 4, 1, 3, 3)
        # First patch's top-left corner lies in the padding.
        assert cols[0, 0, 0, 0, 0] == 0.0

    def test_col2im_is_adjoint_of_im2col(self, rng):
        # <im2col(x), y> == <x, col2im(y)> for every geometry tested.
        for stride, padding in ((1, 0), (2, 1), (1, 2)):
            x = rng.normal(size=(2, 3, 6, 6))
            cols = im2col(x, 3, stride, padding)
            y = rng.normal(size=cols.shape)
            lhs = float(np.sum(cols * y))
            back = col2im(y, x.shape, 3, stride, padding)
            rhs = float(np.sum(x * back))
            assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            col2im(rng.normal(size=(1, 4, 1, 2, 3)), (1, 1, 4, 4), 2, 2, 0)


class TestConv2D:
    def test_output_shape(self, rng):
        layer = Conv2D(3, 8, 3, stride=1, padding=1, seed=0)
        out = layer.forward(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 8, 8, 8)

    def test_strided_output_shape(self, rng):
        layer = Conv2D(1, 4, 5, stride=2, padding=0, seed=0)
        out = layer.forward(rng.normal(size=(2, 1, 13, 13)))
        assert out.shape == (2, 4, 5, 5)

    def test_matches_direct_convolution(self, rng):
        # Cross-check against a literal loop implementation of Eq. (2).
        layer = Conv2D(2, 3, 3, stride=1, padding=0, bias=False, seed=1)
        x = rng.normal(size=(1, 2, 5, 5))
        out = layer.forward(x)
        w = layer.weight.value
        for p in range(3):
            for a in range(3):
                for b in range(3):
                    direct = float(
                        np.sum(x[0, :, a : a + 3, b : b + 3] * w[p])
                    )
                    assert out[0, p, a, b] == pytest.approx(direct)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_gradients(self, rng, stride, padding):
        layer = Conv2D(2, 3, 3, stride=stride, padding=padding, seed=2)
        assert_layer_gradients(layer, rng.normal(size=(2, 2, 6, 6)), rng)

    def test_channel_validation(self, rng):
        with pytest.raises(ShapeError):
            Conv2D(3, 4, 3, seed=0).forward(rng.normal(size=(1, 2, 8, 8)))


class TestBlockCirculantConv2D:
    def test_equals_conv2d_on_expanded_filters(self, rng):
        # The central §3.2 equivalence: the block-circulant CONV layer is
        # exactly an unstructured convolution with the expanded filters.
        layer = BlockCirculantConv2D(
            4, 6, 3, block_size=2, stride=1, padding=1, seed=3
        )
        x = rng.normal(size=(2, 4, 5, 5))
        reference = Conv2D(4, 6, 3, stride=1, padding=1, seed=0)
        reference.weight.value = layer.to_dense_filters()
        reference.bias.value = layer.bias.value
        np.testing.assert_allclose(
            layer.forward(x), reference.forward(x), atol=1e-9
        )

    def test_equivalence_with_channel_padding(self, rng):
        # 3 input channels with k = 2 forces padding along channels.
        layer = BlockCirculantConv2D(3, 5, 3, block_size=2, padding=1, seed=4)
        x = rng.normal(size=(1, 3, 4, 4))
        reference = Conv2D(3, 5, 3, padding=1, seed=0)
        reference.weight.value = layer.to_dense_filters()
        reference.bias.value = layer.bias.value
        np.testing.assert_allclose(
            layer.forward(x), reference.forward(x), atol=1e-9
        )

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_gradients(self, rng, k):
        layer = BlockCirculantConv2D(2, 4, 2, block_size=k, seed=5)
        assert_layer_gradients(layer, rng.normal(size=(2, 2, 4, 4)), rng)

    def test_gradients_with_stride_padding(self, rng):
        layer = BlockCirculantConv2D(
            2, 2, 3, block_size=2, stride=2, padding=1, seed=6
        )
        assert_layer_gradients(layer, rng.normal(size=(1, 2, 5, 5)), rng)

    def test_compression_ratio(self):
        layer = BlockCirculantConv2D(64, 64, 3, block_size=16, seed=0)
        assert layer.compression_ratio == pytest.approx(16.0)
        assert layer.weight.size == 9 * 4 * 4 * 16

    def test_shape_validation(self, rng):
        layer = BlockCirculantConv2D(3, 4, 3, block_size=2, seed=0)
        with pytest.raises(ShapeError):
            layer.forward(rng.normal(size=(1, 4, 8, 8)))

    def test_backward_before_forward(self, rng):
        with pytest.raises(RuntimeError):
            BlockCirculantConv2D(2, 2, 2, block_size=2, seed=0).backward(
                rng.normal(size=(1, 2, 3, 3))
            )

    def test_radix2_backend_parity(self, rng):
        a = BlockCirculantConv2D(4, 4, 3, 4, padding=1, seed=7, backend="numpy")
        b = BlockCirculantConv2D(4, 4, 3, 4, padding=1, seed=7, backend="radix2")
        x = rng.normal(size=(1, 4, 5, 5))
        np.testing.assert_allclose(a.forward(x), b.forward(x), atol=1e-9)
