"""Fault-injection tests for the multi-process server.

Crashes, overload shedding and deadline drops — every scenario is made
deterministic by :class:`~repro.serving.multiproc.BatchGate`, which parks
a worker *inside* a batch at a known point instead of racing sleeps
against the scheduler. Marked ``mp`` (spawns worker processes); tier-1
excludes it, CI runs it in the dedicated mp job.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceededError,
    QueueFullError,
    WorkerCrashedError,
)
from repro.nn import BlockCirculantDense, ReLU, Sequential
from repro.serving import BatchGate, MPInferenceServer

pytestmark = pytest.mark.mp


def _fc_net(seed: int = 0) -> Sequential:
    net = Sequential(
        BlockCirculantDense(32, 32, 8, seed=seed),
        ReLU(),
        BlockCirculantDense(32, 16, 4, seed=seed + 1),
    )
    net.compile_inference()
    return net


@pytest.fixture
def gated_server():
    """A one-worker server with an armed-able batch gate, plus its net.

    One worker makes the fault scenarios exact: the wedged/killed worker
    is *the* worker, so queue arithmetic and respawn behaviour have no
    sibling to hide behind. The fixture guarantees the gate is opened and
    the server stopped (with a bounded drain) even when a test fails.
    """
    import multiprocessing

    net = _fc_net()
    gate = BatchGate(multiprocessing.get_context("spawn"))
    server = MPInferenceServer(
        net, workers=1, max_batch=1, max_wait_ms=0.0, queue_depth=3,
        batch_gate=gate,
    )
    server.start()
    x = np.random.default_rng(7).normal(size=32)
    expected = net.inference_forward(x[None])[0]
    # Warm the worker (spawn + imports) before any timing-sensitive step.
    np.testing.assert_array_equal(server.infer(x, timeout=120.0), expected)
    try:
        yield server, gate, x, expected
    finally:
        gate.open()
        server.stop(drain_timeout_s=30.0)


class TestWorkerCrash:
    def test_sigkill_mid_batch_fails_fast_then_respawns_bit_identical(
        self, gated_server
    ):
        server, gate, x, expected = gated_server
        gate.arm()
        future = server.submit(x)
        assert gate.entered.wait(30.0), "worker never entered the batch"
        # The worker is parked inside the forward with our request.
        os.kill(gate.pid.value, signal.SIGKILL)
        begin = time.monotonic()
        with pytest.raises(WorkerCrashedError, match="-9"):
            future.result(30.0)
        # Fail-fast: the supervisor noticed the death via the process
        # sentinel, not a timeout — the in-flight future must fail in
        # far less time than any request deadline.
        assert time.monotonic() - begin < 10.0
        # The respawned worker re-attaches the shared image (no
        # recompile, no re-FFT) and serves bit-identically.
        gate.open()
        np.testing.assert_array_equal(
            server.infer(x, timeout=120.0), expected
        )
        stats = server.stats()
        assert stats["crashes"] == 1
        assert stats["respawns"] == 1

    def test_every_inflight_batch_on_the_dead_worker_fails(
        self, gated_server
    ):
        # Lanes pipeline batches into the worker's task pipe, so a batch
        # dispatched behind the wedged one is in flight too — when the
        # worker dies, *both* fail fast with WorkerCrashedError (nothing
        # silently waits on a reply that can never come), and the
        # respawned worker serves fresh requests bit-identically.
        server, gate, x, expected = gated_server
        gate.arm()
        wedged = server.submit(x)
        assert gate.entered.wait(30.0)
        pipelined = server.submit(x)
        # White-box: wait until the lane has actually dispatched the
        # second batch into the wedged worker's pipe — killed earlier,
        # the request would (correctly) be served by the respawn instead.
        give_up = time.monotonic() + 30.0
        while len(server._inflight) < 2 and time.monotonic() < give_up:
            time.sleep(0.001)
        assert len(server._inflight) == 2
        os.kill(gate.pid.value, signal.SIGKILL)
        with pytest.raises(WorkerCrashedError):
            wedged.result(30.0)
        with pytest.raises(WorkerCrashedError):
            pipelined.result(30.0)
        gate.open()
        np.testing.assert_array_equal(
            server.infer(x, timeout=120.0), expected
        )
        assert server.stats()["respawns"] == 1

    def test_stop_with_wedged_worker_does_not_hang(self):
        # stop(drain_timeout_s=...) must bound shutdown even when a
        # worker never answers: the wedged batch fails with
        # WorkerCrashedError instead of blocking forever.
        import multiprocessing

        net = _fc_net()
        gate = BatchGate(multiprocessing.get_context("spawn"))
        server = MPInferenceServer(net, workers=1, max_batch=1,
                                   max_wait_ms=0.0, batch_gate=gate)
        server.start()
        x = np.random.default_rng(7).normal(size=32)
        try:
            server.infer(x, timeout=120.0)  # warm
            gate.arm()
            future = server.submit(x)
            assert gate.entered.wait(30.0)
            begin = time.monotonic()
            server.stop(drain_timeout_s=1.0)
            assert time.monotonic() - begin < 30.0
            with pytest.raises(WorkerCrashedError):
                future.result(10.0)
        finally:
            gate.open()
            server.stop(drain_timeout_s=30.0)

    def test_dispatcher_marked_death_still_respawns(self):
        # When a SIGKILL races the dispatcher's pipe send, the EPIPE
        # handler marks the worker dead before the collector sees the
        # sentinel — and a not-alive worker is out of the collector's
        # wait set. Regression: the reap used `alive` itself as its
        # dedup, so a pre-marked worker was never respawned and the
        # server was left permanently workerless.
        net = _fc_net()
        x = np.random.default_rng(11).normal(size=32)
        with MPInferenceServer(net, workers=1, max_batch=1,
                               max_wait_ms=0.0) as server:
            expected = server.infer(x, timeout=120.0)  # warm
            worker = server._workers[0]
            # Hold the server lock so the collector cannot reap until the
            # dispatcher-style marking below is in place.
            with server._lock:
                os.kill(worker.process.pid, signal.SIGKILL)
                worker.process.join(timeout=30.0)
                # What _dispatch's broken-pipe branch does:
                worker.alive = False
                server._wake_collector()
            np.testing.assert_array_equal(
                server.infer(x, timeout=120.0), expected
            )
            stats = server.stats()
            assert stats["crashes"] == 1
            assert stats["respawns"] == 1


class TestLoadShedding:
    def test_queue_full_rejects_without_blocking(self, gated_server):
        server, gate, x, expected = gated_server
        # queue_depth=3 bounds *unresolved* requests: the batch the
        # wedged worker is sitting on still counts, so wedged + 2 queued
        # fills the endpoint exactly.
        gate.arm()
        admitted = [server.submit(x)]
        assert gate.entered.wait(30.0)
        admitted += [server.submit(x), server.submit(x)]
        begin = time.monotonic()
        with pytest.raises(QueueFullError, match="shedding"):
            server.submit(x)
        # The shed is a synchronous fast reject at admission — it must
        # not wait on the wedged worker or any queue timeout.
        assert time.monotonic() - begin < 0.1
        assert server.stats()["shed"] == 1
        # Shedding is not failure for admitted work: release the worker
        # and every admitted request completes bit-identically.
        gate.open()
        for future in admitted:
            np.testing.assert_array_equal(future.result(120.0).y, expected)

    def test_admission_reopens_after_drain(self, gated_server):
        server, gate, x, expected = gated_server
        gate.arm()
        admitted = [server.submit(x)]
        assert gate.entered.wait(30.0)
        admitted += [server.submit(x), server.submit(x)]
        with pytest.raises(QueueFullError):
            server.submit(x)
        gate.open()
        for future in admitted:
            future.result(120.0)
        # Resolved futures released their admission slots: the endpoint
        # accepts work again without a restart.
        np.testing.assert_array_equal(
            server.infer(x, timeout=120.0), expected
        )


class TestDeadlines:
    def test_scheduler_drops_expired_request_before_batching(
        self, gated_server
    ):
        server, gate, x, expected = gated_server
        # Pin the lane thread inside dispatch by holding the server lock
        # (an RLock, so this thread's own submits still re-enter): the
        # doomed request's deadline lapses while it is still sitting in
        # the batcher, so the *scheduler* drops it at batch formation —
        # it never reaches a worker.
        with server._lock:
            first = server.submit(x)
            doomed = server.submit(x, deadline_ms=1.0)
            time.sleep(0.05)  # let the 1 ms deadline lapse while queued
        np.testing.assert_array_equal(first.result(120.0).y, expected)
        with pytest.raises(DeadlineExceededError, match="before a batch"):
            doomed.result(120.0)
        stats = server.stats()
        assert stats["expired"] == 1
        assert stats["errors"] == 0  # deadline drops are not errors

    def test_worker_drops_batch_whose_deadline_passed_in_flight(
        self, gated_server
    ):
        server, gate, x, expected = gated_server
        # Here the request makes it *into* the worker before the
        # deadline, then the (gated) forward outlives it: the worker
        # itself drops the batch instead of computing a useless answer.
        gate.arm()
        doomed = server.submit(x, deadline_ms=10.0)
        assert gate.entered.wait(30.0)
        time.sleep(0.05)  # park inside the batch past the deadline
        gate.open()
        with pytest.raises(DeadlineExceededError, match="worker"):
            doomed.result(120.0)
        stats = server.stats()
        assert stats["expired"] == 1
        assert stats["errors"] == 0
        # The worker survives a deadline drop — no crash, no respawn.
        assert stats["crashes"] == 0
        np.testing.assert_array_equal(
            server.infer(x, timeout=120.0), expected
        )
