"""Tests for pooling, activations, reshape, dropout and losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn import (
    AvgPool2D,
    Dropout,
    Flatten,
    MaxPool2D,
    MSELoss,
    ReLU,
    Sigmoid,
    SoftmaxCrossEntropyLoss,
    Tanh,
)
from tests.conftest import assert_layer_gradients


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = AvgPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_gradients(self, rng):
        assert_layer_gradients(MaxPool2D(2), rng.normal(size=(2, 3, 4, 4)), rng)

    def test_avgpool_gradients(self, rng):
        assert_layer_gradients(AvgPool2D(2), rng.normal(size=(2, 3, 4, 4)), rng)

    def test_strided_pool_gradients(self, rng):
        assert_layer_gradients(
            MaxPool2D(3, stride=2), rng.normal(size=(1, 2, 7, 7)), rng
        )

    def test_maxpool_routes_gradient_to_argmax(self):
        x = np.zeros((1, 1, 2, 2))
        x[0, 0, 1, 1] = 5.0
        pool = MaxPool2D(2)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 1, 1)))
        expected = np.zeros((1, 1, 2, 2))
        expected[0, 0, 1, 1] = 1.0
        np.testing.assert_allclose(grad, expected)

    def test_output_shape_helper(self):
        assert MaxPool2D(2).output_shape(28, 28) == (14, 14)
        assert MaxPool2D(3, stride=2).output_shape(13, 13) == (6, 6)

    def test_rejects_non_nchw(self, rng):
        with pytest.raises(ShapeError):
            MaxPool2D(2).forward(rng.normal(size=(4, 4)))


class TestActivations:
    def test_relu_values(self):
        x = np.array([[-1.0, 0.0, 2.0]])
        np.testing.assert_allclose(ReLU().forward(x), [[0.0, 0.0, 2.0]])

    def test_relu_gradient_masks_negatives(self, rng):
        layer = ReLU()
        x = np.array([[-1.0, 3.0]])
        layer.forward(x)
        grad = layer.backward(np.array([[5.0, 7.0]]))
        np.testing.assert_allclose(grad, [[0.0, 7.0]])

    @pytest.mark.parametrize("layer_cls", [ReLU, Sigmoid, Tanh])
    def test_gradients(self, rng, layer_cls):
        # ReLU kinks need inputs away from zero for finite differences.
        x = rng.normal(size=(3, 5))
        x[np.abs(x) < 0.1] += 0.5
        assert_layer_gradients(layer_cls(), x, rng)

    def test_sigmoid_range(self, rng):
        out = Sigmoid().forward(rng.normal(scale=5.0, size=(4, 4)))
        assert np.all(out > 0.0) and np.all(out < 1.0)

    def test_backward_before_forward(self, rng):
        for layer in (ReLU(), Sigmoid(), Tanh()):
            with pytest.raises(RuntimeError):
                layer.backward(rng.normal(size=(2, 2)))


class TestFlattenDropout:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 5))
        out = layer.forward(x)
        assert out.shape == (2, 60)
        grad = layer.backward(rng.normal(size=(2, 60)))
        assert grad.shape == (2, 3, 4, 5)

    def test_dropout_eval_is_identity(self, rng):
        layer = Dropout(0.5, seed=0).eval()
        x = rng.normal(size=(4, 8))
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_dropout_training_zeroes_and_scales(self, rng):
        layer = Dropout(0.5, seed=0)
        x = np.ones((1, 10000))
        out = layer.forward(x)
        kept = out[out != 0.0]
        np.testing.assert_allclose(kept, 2.0)
        # Mean preserved in expectation.
        assert float(out.mean()) == pytest.approx(1.0, abs=0.05)

    def test_dropout_backward_uses_same_mask(self, rng):
        layer = Dropout(0.3, seed=1)
        x = rng.normal(size=(2, 50))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_array_equal(grad == 0.0, out == 0.0)

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)
        with pytest.raises(ConfigurationError):
            Dropout(-0.1)


class TestLosses:
    def test_cross_entropy_matches_manual(self, rng):
        loss = SoftmaxCrossEntropyLoss()
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 1])
        value = loss.forward(logits, labels)
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs = exp / exp.sum(axis=1, keepdims=True)
        expected = -np.mean(np.log(probs[np.arange(4), labels]))
        assert value == pytest.approx(expected)

    def test_cross_entropy_gradient(self, rng):
        loss = SoftmaxCrossEntropyLoss()
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 0, 3])

        def value() -> float:
            return loss.forward(logits, labels)

        value()
        analytic = loss.backward()
        from tests.conftest import numeric_gradient

        numeric = numeric_gradient(value, logits)
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)

    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropyLoss()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-6

    def test_predictions(self, rng):
        loss = SoftmaxCrossEntropyLoss()
        logits = np.array([[0.1, 2.0, 0.3], [5.0, 1.0, 0.0]])
        loss.forward(logits, np.array([1, 0]))
        np.testing.assert_array_equal(loss.predictions(), [1, 0])

    def test_cross_entropy_shape_validation(self, rng):
        loss = SoftmaxCrossEntropyLoss()
        with pytest.raises(ShapeError):
            loss.forward(rng.normal(size=(4, 3)), np.zeros(5, dtype=int))

    def test_mse_value_and_gradient(self, rng):
        loss = MSELoss()
        outputs = rng.normal(size=(3, 4))
        targets = rng.normal(size=(3, 4))
        value = loss.forward(outputs, targets)
        assert value == pytest.approx(float(np.mean((outputs - targets) ** 2)))
        grad = loss.backward()
        np.testing.assert_allclose(
            grad, 2 * (outputs - targets) / outputs.size
        )

    def test_mse_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            MSELoss().forward(rng.normal(size=(2, 3)), rng.normal(size=(3, 2)))
