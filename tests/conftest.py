"""Shared pytest fixtures and helpers for the CirCNN reproduction tests."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator so every test is deterministic."""
    return np.random.default_rng(12345)


def numeric_gradient(loss_fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar ``loss_fn`` w.r.t. ``array``.

    ``loss_fn`` takes no arguments and reads ``array`` in place; the helper
    perturbs entries one at a time and restores them.
    """
    grad = np.zeros_like(array, dtype=np.float64)
    iterator = np.nditer(array, flags=["multi_index"])
    for _ in iterator:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        loss_plus = loss_fn()
        array[index] = original - eps
        loss_minus = loss_fn()
        array[index] = original
        grad[index] = (loss_plus - loss_minus) / (2.0 * eps)
    return grad


def assert_layer_gradients(layer, x: np.ndarray, rng: np.random.Generator,
                           atol: float = 1e-5) -> None:
    """Finite-difference check of a Module's input and parameter gradients."""
    output = layer.forward(x)
    cotangent = rng.normal(size=output.shape)

    def loss() -> float:
        return float(np.sum(layer.forward(x) * cotangent))

    layer.zero_grad()
    layer.forward(x)
    grad_input = layer.backward(cotangent)
    grad_input_num = numeric_gradient(loss, x)
    np.testing.assert_allclose(grad_input, grad_input_num, atol=atol)
    for name, param in layer.named_parameters():
        grad_num = numeric_gradient(loss, param.value)
        np.testing.assert_allclose(
            param.grad, grad_num, atol=atol,
            err_msg=f"parameter gradient mismatch: {name}",
        )
