"""Tests for fixed-point quantisation (16-bit datapath, 4-bit NT mode)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.quant import (
    FixedPointFormat,
    QuantizationReport,
    fit_format,
    quantization_snr_db,
    quantize_tensor,
)


class TestFixedPointFormat:
    def test_range_q15(self):
        fmt = FixedPointFormat(16, 15)
        assert fmt.max_value == pytest.approx(1.0 - 2**-15)
        assert fmt.min_value == pytest.approx(-1.0)
        assert fmt.resolution == 2**-15
        assert fmt.num_codes == 65536

    def test_quantize_on_grid(self, rng):
        fmt = FixedPointFormat(8, 4)
        values = fmt.quantize(rng.normal(size=100))
        codes = values / fmt.resolution
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-12)

    def test_saturation(self):
        fmt = FixedPointFormat(8, 4)
        assert fmt.quantize(np.array([100.0]))[0] == fmt.max_value
        assert fmt.quantize(np.array([-100.0]))[0] == fmt.min_value

    def test_round_to_nearest(self):
        fmt = FixedPointFormat(8, 0)
        np.testing.assert_allclose(
            fmt.quantize(np.array([1.4, 1.6, -2.7])), [1.0, 2.0, -3.0]
        )

    def test_idempotent(self, rng):
        fmt = FixedPointFormat(12, 6)
        once = fmt.quantize(rng.normal(size=50))
        np.testing.assert_array_equal(fmt.quantize(once), once)

    def test_error_bounded_by_half_lsb(self, rng):
        fmt = FixedPointFormat(16, 12)
        x = rng.uniform(-1.0, 1.0, size=1000)
        error = fmt.quantization_error(x)
        assert np.max(np.abs(error)) <= fmt.resolution / 2 + 1e-15

    def test_negative_frac_bits(self):
        fmt = FixedPointFormat(8, -2)
        assert fmt.resolution == 4.0
        assert fmt.quantize(np.array([10.0]))[0] == 8.0

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            FixedPointFormat(1, 0)

    def test_str_form(self):
        assert str(FixedPointFormat(16, 15)) == "Q0.15"


class TestFitFormat:
    def test_covers_peak(self, rng):
        x = rng.normal(scale=3.0, size=200)
        fmt = fit_format(x, 16)
        assert fmt.max_value >= np.max(np.abs(x)) or (
            fmt.quantize(x).max() <= fmt.max_value
        )
        # No saturation should occur.
        np.testing.assert_allclose(
            fmt.quantize(x), np.round(x / fmt.resolution) * fmt.resolution
        )

    def test_zero_tensor(self):
        fmt = fit_format(np.zeros(10), 16)
        assert fmt.frac_bits == 15

    def test_small_values_get_fine_resolution(self):
        fine = fit_format(np.full(4, 1e-3), 16)
        coarse = fit_format(np.full(4, 1e3), 16)
        assert fine.resolution < coarse.resolution

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_format(np.array([]), 16)


class TestSNR:
    def test_16_bit_is_benign(self, rng):
        x = rng.normal(size=5000)
        assert quantization_snr_db(x, 16) > 70.0

    def test_4_bit_is_destructive(self, rng):
        # The paper's near-threshold caveat: 4-bit wrecks accuracy.
        x = rng.normal(size=5000)
        assert quantization_snr_db(x, 4) < 20.0

    def test_snr_increases_with_bits(self, rng):
        x = rng.normal(size=2000)
        snrs = [quantization_snr_db(x, bits) for bits in (4, 8, 12, 16)]
        assert snrs == sorted(snrs)

    def test_quantize_tensor_roundtrip_error(self, rng):
        x = rng.normal(size=100)
        err16 = np.max(np.abs(quantize_tensor(x, 16) - x))
        err4 = np.max(np.abs(quantize_tensor(x, 4) - x))
        assert err16 < err4

    def test_report(self, rng):
        report = QuantizationReport.for_tensor(rng.normal(size=500), 16)
        assert report.snr_db > 70
        assert report.max_abs_error < 1e-3
        assert report.format.total_bits == 16

    @given(
        seed=st.integers(0, 2**31 - 1),
        bits=st.integers(min_value=3, max_value=16),
    )
    @settings(max_examples=30, deadline=None)
    def test_no_saturation_property(self, seed, bits):
        # Range-fitted formats never saturate the tensor they were fit to.
        rng = np.random.default_rng(seed)
        x = rng.normal(scale=float(rng.uniform(0.01, 100)), size=64)
        fmt = fit_format(x, bits)
        quantized = fmt.quantize(x)
        assert np.max(np.abs(quantized - x)) <= fmt.resolution / 2 + 1e-12


class TestQuantizedInference:
    def test_16bit_weights_preserve_network_output(self, rng):
        # §4.2: 16-bit weights are accurate enough for DNNs.
        from repro.nn import BlockCirculantDense

        layer = BlockCirculantDense(64, 32, 8, seed=0)
        x = rng.normal(size=(4, 64))
        clean = layer.forward(x)
        layer.weight.value = quantize_tensor(layer.weight.value, 16)
        quantized = layer.forward(x)
        assert np.max(np.abs(clean - quantized)) < 1e-3

    def test_4bit_weights_distort_network_output(self, rng):
        from repro.nn import BlockCirculantDense

        layer = BlockCirculantDense(64, 32, 8, seed=0)
        x = rng.normal(size=(4, 64))
        clean = layer.forward(x)
        layer.weight.value = quantize_tensor(layer.weight.value, 4)
        distorted = layer.forward(x)
        relative = np.linalg.norm(distorted - clean) / np.linalg.norm(clean)
        assert relative > 0.05


class TestEmptyBatchAccuracy:
    """Bugfix: zero-length evaluation sets must not divide by zero."""

    @staticmethod
    def _network():
        from repro.nn import BlockCirculantDense, Sequential

        return Sequential(BlockCirculantDense(8, 4, 2, seed=0))

    def test_network_accuracy_empty_returns_nan(self):
        from repro.quant import network_accuracy

        result = network_accuracy(
            self._network(), np.zeros((0, 8)), np.zeros((0,), dtype=int)
        )
        assert np.isnan(result)

    def test_network_accuracy_empty_can_raise(self):
        from repro.quant import network_accuracy

        with pytest.raises(ConfigurationError):
            network_accuracy(
                self._network(), np.zeros((0, 8)), np.zeros((0,), dtype=int),
                on_empty="raise",
            )

    def test_network_accuracy_rejects_bad_on_empty(self, rng):
        from repro.quant import network_accuracy

        with pytest.raises(ConfigurationError):
            network_accuracy(
                self._network(), rng.normal(size=(2, 8)), np.zeros(2, int),
                on_empty="zero",
            )

    def test_accuracy_vs_bits_empty_returns_nan_per_width(self):
        from repro.quant import accuracy_vs_bits

        results = accuracy_vs_bits(
            self._network(), np.zeros((0, 8)), np.zeros((0,), dtype=int),
            bit_widths=(16, 4),
        )
        assert set(results) == {16, 4}
        assert all(np.isnan(v) for v in results.values())

    def test_accuracy_vs_bits_empty_can_raise(self):
        from repro.quant import accuracy_vs_bits

        with pytest.raises(ConfigurationError):
            accuracy_vs_bits(
                self._network(), np.zeros((0, 8)), np.zeros((0,), dtype=int),
                bit_widths=(16,), on_empty="raise",
            )

    def test_non_empty_unchanged(self, rng):
        from repro.quant import network_accuracy

        net = self._network()
        x = rng.normal(size=(16, 8))
        y = rng.integers(0, 4, size=16)
        accuracy = network_accuracy(net, x, y)
        assert 0.0 <= accuracy <= 1.0

    def test_quantize_per_sample_matches_per_row_fit(self, rng):
        # The vectorised serving path is bit-identical to quantising each
        # row with its own per-tensor format.
        from repro.quant import quantize_tensor
        from repro.quant.schemes import quantize_per_sample

        x = rng.normal(size=(5, 7)) * 10.0 ** rng.integers(-3, 4, size=(5, 1))
        x[2] = 0.0  # all-zero row gets maximum fractional precision
        for bits in (16, 8, 4):
            np.testing.assert_array_equal(
                quantize_per_sample(x, bits),
                np.stack([quantize_tensor(row, bits) for row in x]),
            )
        with pytest.raises(ConfigurationError):
            quantize_per_sample(np.zeros(3), 8)

    def test_network_accuracy_restores_prior_mode(self, rng):
        # An accuracy probe on a compiled serving network must not leave
        # it in training mode (stochastic dropout, non-reentrant state);
        # a training network keeps training.
        from repro.quant import network_accuracy

        x = rng.normal(size=(4, 8))
        y = rng.integers(0, 4, size=4)
        serving = self._network().compile_inference()
        network_accuracy(serving, x, y)
        assert serving.training is False
        training = self._network()
        network_accuracy(training, x, y)
        assert training.training is True
