"""End-to-end integration tests across module boundaries.

These exercise the paths a downstream user actually takes: train a
compressed network on image data, compare it to the dense baseline and the
other compression schemes, quantise it, and push the same model through
the hardware mapper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.complexity import model_work
from repro.arch import fpga_cyclone_v, map_model
from repro.circulant import BlockCirculantMatrix
from repro.compress import MagnitudePruner
from repro.datasets import make_classification_images, dataset_spec
from repro.models import (
    CompressionPlan,
    build_alexnet_mini,
    build_lenet5,
    default_lenet5_plan,
    lenet5_spec,
)
from repro.nn import (
    Adam,
    BlockCirculantDense,
    Dense,
    ReLU,
    Sequential,
    Trainer,
)
from repro.quant import quantize_tensor


@pytest.fixture(scope="module")
def small_mnist():
    return make_classification_images(
        dataset_spec("mnist"), 192, 96, noise=0.8, seed=3
    )


class TestTrainCompressedCNN:
    def test_block_circulant_lenet_trains(self, small_mnist):
        # A (reduced-epoch) version of the Fig 7b pipeline on the CNN path.
        net = build_lenet5(default_lenet5_plan(), seed=0)
        trainer = Trainer(net, Adam(net.parameters(), lr=2e-3), seed=0)
        history = trainer.fit(
            small_mnist.x_train, small_mnist.y_train, epochs=3, batch_size=32
        )
        assert history.train_loss[-1] < history.train_loss[0]
        assert trainer.evaluate(small_mnist.x_train, small_mnist.y_train) > 0.5

    def test_alexnet_mini_compressed_forward_backward(self, rng):
        plan = CompressionPlan(block_sizes={"conv2": 4, "fc1": 64, "fc2": 8})
        net = build_alexnet_mini(plan, seed=0)
        x = rng.normal(size=(4, 3, 32, 32))
        out = net(x)
        grad = net.backward(rng.normal(size=out.shape))
        assert grad.shape == x.shape
        assert all(
            np.any(p.grad != 0.0) for p in net.parameters()
        ), "every parameter should receive gradient"


class TestCompressionComparison:
    def test_circulant_vs_pruning_at_matched_budget(self, small_mnist):
        """Train dense, then compare block-circulant training against
        prune+finetune at a similar parameter budget (the paper's central
        comparison, §2.2 vs §3.1)."""
        flat_train = small_mnist.x_train.reshape(len(small_mnist.x_train), -1)
        flat_test = small_mnist.x_test.reshape(len(small_mnist.x_test), -1)

        # Block-circulant: trained directly with k=16 (16x fewer params).
        circulant_net = Sequential(
            BlockCirculantDense(784, 64, 16, seed=0), ReLU(),
            Dense(64, 10, seed=1),
        )
        trainer = Trainer(
            circulant_net, Adam(circulant_net.parameters(), lr=2e-3), seed=0
        )
        trainer.fit(flat_train, small_mnist.y_train, epochs=6, batch_size=32)
        circulant_acc = trainer.evaluate(flat_test, small_mnist.y_test)

        # Pruning: train dense, prune to ~1/16 density, finetune.
        dense_net = Sequential(
            Dense(784, 64, seed=0), ReLU(), Dense(64, 10, seed=1)
        )
        dense_trainer = Trainer(
            dense_net, Adam(dense_net.parameters(), lr=2e-3), seed=0
        )
        dense_trainer.fit(
            flat_train, small_mnist.y_train, epochs=4, batch_size=32
        )
        pruner = MagnitudePruner(dense_net, sparsity=1 - 1 / 16)
        pruner.prune()
        from repro.nn import SoftmaxCrossEntropyLoss

        loss = SoftmaxCrossEntropyLoss()
        optimizer = Adam(dense_net.parameters(), lr=1e-3)
        for _ in range(2):
            logits = dense_net(flat_train)
            loss.forward(logits, small_mnist.y_train)
            optimizer.zero_grad()
            dense_net.backward(loss.backward())
            optimizer.step()
            pruner.apply_masks()
        pruned_acc = dense_trainer.evaluate(flat_test, small_mnist.y_test)

        # Both compress ~16x; block-circulant must be competitive without
        # the extra prune+retrain stage (and with regular structure).
        assert circulant_acc >= pruned_acc - 0.10
        # And the pruned storage pays index overhead; circulant does not.
        pruned_bits = pruner.storage(weight_bits=16).total_bits
        circulant_bits = circulant_net.layers[0].weight.size * 16
        assert circulant_bits < pruned_bits


class TestQuantizedCompressedInference:
    def test_16bit_quantised_circulant_model_keeps_accuracy(self, small_mnist):
        flat_train = small_mnist.x_train.reshape(len(small_mnist.x_train), -1)
        flat_test = small_mnist.x_test.reshape(len(small_mnist.x_test), -1)
        net = Sequential(
            BlockCirculantDense(784, 64, 8, seed=0), ReLU(),
            Dense(64, 10, seed=1),
        )
        trainer = Trainer(net, Adam(net.parameters(), lr=2e-3), seed=0)
        trainer.fit(flat_train, small_mnist.y_train, epochs=6, batch_size=32)
        clean = trainer.evaluate(flat_test, small_mnist.y_test)
        for param in net.parameters():
            param.value = quantize_tensor(param.value, 16)
        quantised = trainer.evaluate(flat_test, small_mnist.y_test)
        assert abs(clean - quantised) <= 0.02  # §4.2's 16-bit claim


class TestModelToHardwarePath:
    def test_trained_model_shapes_match_mapped_spec(self):
        """The spec the mapper consumes must describe the same layer
        shapes as the trainable network (catches spec/builder drift)."""
        spec = lenet5_spec()
        plan = default_lenet5_plan()
        net = build_lenet5(plan, seed=0)
        weights = sum(
            p.size
            for layer in net.layers
            for name, p in layer.named_parameters()
            if name == "weight"
        )
        assert weights == plan.total_compressed_params(spec)

    def test_map_trained_lenet(self):
        report = map_model(
            lenet5_spec(), default_lenet5_plan(), fpga_cyclone_v()
        )
        assert report.throughput_fps > 1000
        assert report.power_w < 2.0

    def test_work_items_cover_trained_layers(self):
        works = model_work(lenet5_spec(), default_lenet5_plan())
        fft_layers = [w for w in works if w.fft_size > 1]
        assert fft_layers, "compressed LeNet must contain FFT work"


class TestNumericalConsistencyAcrossStack:
    def test_layer_and_matrix_agree(self, rng):
        """BlockCirculantDense and BlockCirculantMatrix are two views of
        the same math and must agree bit-for-bit in float64."""
        layer = BlockCirculantDense(24, 16, 8, bias=False, seed=5)
        matrix = BlockCirculantMatrix(layer.weight.value, 16, 24)
        x = rng.normal(size=(7, 24))
        np.testing.assert_allclose(
            layer.forward(x), matrix.matvec(x), atol=1e-12
        )

    def test_full_stack_seed_determinism(self, small_mnist):
        def run() -> float:
            net = Sequential(
                BlockCirculantDense(784, 32, 8, seed=9), ReLU(),
                Dense(32, 10, seed=10),
            )
            trainer = Trainer(net, Adam(net.parameters(), lr=2e-3), seed=11)
            flat = small_mnist.x_train.reshape(len(small_mnist.x_train), -1)
            trainer.fit(flat, small_mnist.y_train, epochs=2, batch_size=32)
            return trainer.evaluate(flat, small_mnist.y_train)

        assert run() == run()
