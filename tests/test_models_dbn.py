"""Tests for the RBM / DBN substrate (§3.4 training workload)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circulant.ops import expand_to_dense
from repro.errors import ConfigurationError, ShapeError
from repro.models import DBN, RBM


def _binary_data(rng, n=48, dims=32):
    return (rng.random((n, dims)) < 0.3).astype(float)


class TestRBMStructure:
    def test_dense_weight_shape(self):
        rbm = RBM(32, 16, block_size=None, seed=0)
        assert rbm.weight.shape == (16, 32)
        assert not rbm.is_circulant
        assert rbm.num_weight_parameters == 512

    def test_circulant_weight_shape(self):
        rbm = RBM(32, 16, block_size=8, seed=0)
        assert rbm.weight.shape == (2, 4, 8)
        assert rbm.is_circulant
        assert rbm.num_weight_parameters == 64

    def test_compression_is_k_fold(self):
        dense = RBM(64, 64, seed=0)
        circulant = RBM(64, 64, block_size=16, seed=0)
        ratio = dense.num_weight_parameters / circulant.num_weight_parameters
        assert ratio == pytest.approx(16.0)

    def test_invalid_widths(self):
        with pytest.raises(ConfigurationError):
            RBM(0, 8)


class TestRBMComputation:
    def test_hidden_probs_in_unit_interval(self, rng):
        for block in (None, 8):
            rbm = RBM(32, 16, block_size=block, seed=0)
            probs = rbm.hidden_probs(_binary_data(rng))
            assert np.all((probs > 0) & (probs < 1))

    def test_circulant_affine_maps_match_dense_expansion(self, rng):
        rbm = RBM(32, 16, block_size=8, seed=0)
        dense_w = expand_to_dense(rbm.weight, 16, 32)
        v = rng.normal(size=(4, 32))
        np.testing.assert_allclose(
            rbm._wv(v), v @ dense_w.T, atol=1e-9
        )
        h = rng.normal(size=(4, 16))
        np.testing.assert_allclose(
            rbm._wt_h(h), h @ dense_w, atol=1e-9
        )

    def test_circulant_gradient_is_structured_projection(self, rng):
        # The CD update must equal the dense outer product projected onto
        # the block-circulant parameterisation (summed cross-correlation).
        rbm = RBM(8, 8, block_size=4, seed=0)
        v = rng.normal(size=(3, 8))
        h = rng.normal(size=(3, 8))
        grad = rbm._weight_gradient(h, v)
        # Finite-difference through the energy term sum(h * (W v)).
        eps = 1e-6
        numeric = np.zeros_like(rbm.weight)
        for index in np.ndindex(rbm.weight.shape):
            original = rbm.weight[index]
            rbm.weight[index] = original + eps
            up = float(np.sum(h * rbm._wv(v)))
            rbm.weight[index] = original - eps
            down = float(np.sum(h * rbm._wv(v)))
            rbm.weight[index] = original
            numeric[index] = (up - down) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, atol=1e-5)

    def test_cd1_shape_validation(self, rng):
        rbm = RBM(32, 16, seed=0)
        with pytest.raises(ShapeError):
            rbm.cd1_step(rng.normal(size=(4, 31)))


class TestRBMLearning:
    @pytest.mark.parametrize("block", [None, 8])
    def test_cd1_reduces_reconstruction_error(self, rng, block):
        data = _binary_data(rng, n=96, dims=32)
        rbm = RBM(32, 24, block_size=block, seed=1)
        before = rbm.reconstruction_error(data)
        for _ in range(15):
            for start in range(0, len(data), 16):
                rbm.cd1_step(data[start : start + 16], lr=0.1)
        after = rbm.reconstruction_error(data)
        assert after < before


class TestDBN:
    def test_stack_structure(self):
        dbn = DBN([32, 24, 16], block_size=8, seed=0)
        assert len(dbn.rbms) == 2
        assert dbn.rbms[0].n_visible == 32
        assert dbn.rbms[1].n_hidden == 16

    def test_pretrain_logs_errors(self, rng):
        data = _binary_data(rng, n=48)
        dbn = DBN([32, 16], block_size=None, seed=0)
        log = dbn.pretrain(data, epochs=3, batch_size=16, seed=1)
        assert len(log.layer_errors) == 1
        assert len(log.layer_errors[0]) == 3
        assert log.layer_errors[0][-1] <= log.layer_errors[0][0]

    def test_transform_output_shape(self, rng):
        data = _binary_data(rng, n=20)
        dbn = DBN([32, 24, 12], block_size=4, seed=0)
        features = dbn.transform(data)
        assert features.shape == (20, 12)
        assert np.all((features >= 0) & (features <= 1))

    def test_needs_two_widths(self):
        with pytest.raises(ConfigurationError):
            DBN([32])

    def test_circulant_dbn_compresses(self):
        dense = DBN([64, 64, 64], seed=0)
        circulant = DBN([64, 64, 64], block_size=16, seed=0)
        assert (
            dense.num_weight_parameters
            == 16 * circulant.num_weight_parameters
        )
