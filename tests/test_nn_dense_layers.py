"""Gradient and equivalence tests for Dense and BlockCirculantDense."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn import BlockCirculantDense, Dense
from tests.conftest import assert_layer_gradients


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(7, 5, seed=0)
        assert layer.forward(rng.normal(size=(3, 7))).shape == (3, 5)

    def test_forward_formula(self, rng):
        layer = Dense(4, 3, seed=0)
        x = rng.normal(size=(2, 4))
        expected = x @ layer.weight.value.T + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_gradients(self, rng):
        assert_layer_gradients(Dense(6, 4, seed=1), rng.normal(size=(3, 6)), rng)

    def test_no_bias(self, rng):
        layer = Dense(4, 3, bias=False, seed=0)
        assert layer.bias is None
        assert layer.num_parameters() == 12

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            Dense(4, 3, seed=0).forward(rng.normal(size=(2, 5)))

    def test_backward_before_forward(self, rng):
        with pytest.raises(RuntimeError):
            Dense(4, 3, seed=0).backward(rng.normal(size=(2, 3)))

    def test_grad_accumulates(self, rng):
        layer = Dense(4, 3, seed=0)
        x = rng.normal(size=(2, 4))
        g = rng.normal(size=(2, 3))
        layer.forward(x)
        layer.backward(g)
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(g)
        np.testing.assert_allclose(layer.weight.grad, 2 * first)


class TestBlockCirculantDense:
    @pytest.mark.parametrize(
        "n,m,k", [(8, 8, 4), (7, 5, 4), (12, 6, 3), (16, 16, 16)]
    )
    def test_gradients(self, rng, n, m, k):
        layer = BlockCirculantDense(n, m, k, seed=1)
        assert_layer_gradients(layer, rng.normal(size=(2, n)), rng)

    def test_equals_dense_on_expanded_matrix(self, rng):
        layer = BlockCirculantDense(12, 8, 4, seed=2)
        x = rng.normal(size=(5, 12))
        expected = x @ layer.to_dense_matrix().T + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-9)

    def test_block_size_one_matches_structure(self, rng):
        # k = 1 blocks are scalars: the layer is an unstructured matrix.
        layer = BlockCirculantDense(5, 4, 1, seed=0)
        assert layer.weight.value.shape == (4, 5, 1)
        assert layer.compression_ratio == pytest.approx(1.0)

    def test_compression_ratio(self):
        layer = BlockCirculantDense(1024, 512, 64, seed=0)
        assert layer.compression_ratio == pytest.approx(64.0)
        assert layer.dense_parameters == 1024 * 512

    def test_parameter_count_is_linear_not_quadratic(self):
        small = BlockCirculantDense(256, 256, 64, seed=0)
        large = BlockCirculantDense(512, 512, 64, seed=0)
        # Dense params would grow 4x; block-circulant grows 4x too in pq
        # but with k fixed stays k-fold smaller.
        assert small.weight.size == 256 * 256 // 64
        assert large.weight.size == 512 * 512 // 64

    def test_padded_shapes_forward_backward(self, rng):
        layer = BlockCirculantDense(10, 6, 4, seed=3)
        x = rng.normal(size=(3, 10))
        out = layer.forward(x)
        assert out.shape == (3, 6)
        grad = layer.backward(rng.normal(size=(3, 6)))
        assert grad.shape == (3, 10)

    def test_radix2_backend_parity(self, rng):
        a = BlockCirculantDense(16, 8, 8, seed=4, backend="numpy")
        b = BlockCirculantDense(16, 8, 8, seed=4, backend="radix2")
        x = rng.normal(size=(2, 16))
        np.testing.assert_allclose(a.forward(x), b.forward(x), atol=1e-9)

    def test_shape_validation(self, rng):
        layer = BlockCirculantDense(8, 8, 4, seed=0)
        with pytest.raises(ShapeError):
            layer.forward(rng.normal(size=(2, 9)))
        layer.forward(rng.normal(size=(2, 8)))
        with pytest.raises(ShapeError):
            layer.backward(rng.normal(size=(2, 9)))

    def test_backward_before_forward(self, rng):
        with pytest.raises(RuntimeError):
            BlockCirculantDense(8, 8, 4, seed=0).backward(
                rng.normal(size=(2, 8))
            )

    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(2, 12),
        m=st.integers(2, 12),
        k=st.sampled_from([2, 4]),
    )
    @settings(max_examples=25, deadline=None)
    def test_forward_matches_expansion_property(self, seed, n, m, k):
        rng = np.random.default_rng(seed)
        layer = BlockCirculantDense(n, m, k, bias=False, seed=int(seed % 1000))
        x = rng.normal(size=(2, n))
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.to_dense_matrix().T, atol=1e-8
        )
