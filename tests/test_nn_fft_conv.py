"""Tests for the LeCun FFT-convolution baseline (paper §2.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import Conv2D, FFTConv2D
from repro.nn.fft_conv import fft_conv_extra_storage_factor
from tests.conftest import assert_layer_gradients


def _matched_conv(fft_layer: FFTConv2D, padding: int) -> Conv2D:
    reference = Conv2D(
        fft_layer.in_channels, fft_layer.out_channels, fft_layer.field,
        padding=padding, seed=0,
    )
    reference.weight.value = fft_layer.weight.value.copy()
    reference.bias.value = fft_layer.bias.value.copy()
    return reference


class TestEquivalenceWithConv2D:
    @pytest.mark.parametrize("padding", [0, 1, 2])
    def test_forward_matches(self, rng, padding):
        fft_layer = FFTConv2D(3, 5, 3, padding=padding, seed=1)
        reference = _matched_conv(fft_layer, padding)
        x = rng.normal(size=(2, 3, 7, 7))
        np.testing.assert_allclose(
            fft_layer.forward(x), reference.forward(x), atol=1e-9
        )

    def test_forward_matches_large_filter(self, rng):
        # The regime the paper concedes to [52]: large filters.
        fft_layer = FFTConv2D(2, 3, 7, seed=2)
        reference = _matched_conv(fft_layer, 0)
        x = rng.normal(size=(1, 2, 12, 12))
        np.testing.assert_allclose(
            fft_layer.forward(x), reference.forward(x), atol=1e-8
        )

    @pytest.mark.parametrize("padding", [0, 1])
    def test_backward_matches(self, rng, padding):
        fft_layer = FFTConv2D(2, 3, 3, padding=padding, seed=3)
        reference = _matched_conv(fft_layer, padding)
        x = rng.normal(size=(2, 2, 6, 6))
        out = fft_layer.forward(x)
        reference.forward(x)
        cotangent = rng.normal(size=out.shape)
        fft_layer.zero_grad()
        reference.zero_grad()
        grad_fft = fft_layer.backward(cotangent)
        grad_ref = reference.backward(cotangent)
        np.testing.assert_allclose(grad_fft, grad_ref, atol=1e-9)
        np.testing.assert_allclose(
            fft_layer.weight.grad, reference.weight.grad, atol=1e-9
        )

    def test_gradients_against_finite_differences(self, rng):
        assert_layer_gradients(
            FFTConv2D(2, 2, 3, padding=1, seed=4),
            rng.normal(size=(1, 2, 5, 5)), rng,
        )


class TestPaperCritique:
    def test_no_weight_compression(self):
        # §2.3: the method keeps the unstructured parameter count.
        layer = FFTConv2D(16, 32, 3, seed=0)
        dense = Conv2D(16, 32, 3, seed=0)
        assert layer.weight.size == dense.weight.size

    def test_extra_storage_for_small_filters(self):
        # Storing spectra at map size *increases* storage for 3x3 filters.
        factor = fft_conv_extra_storage_factor(13, 13, 3)
        assert factor > 10.0

    def test_extra_storage_shrinks_for_large_filters(self):
        small_filter = fft_conv_extra_storage_factor(28, 28, 3)
        large_filter = fft_conv_extra_storage_factor(28, 28, 11)
        assert large_filter < small_filter

    def test_validation(self, rng):
        layer = FFTConv2D(3, 4, 3, seed=0)
        with pytest.raises(ShapeError):
            layer.forward(rng.normal(size=(1, 2, 8, 8)))
        with pytest.raises(ShapeError):
            FFTConv2D(1, 1, 5, seed=0).forward(rng.normal(size=(1, 1, 3, 3)))
        with pytest.raises(RuntimeError):
            FFTConv2D(1, 1, 3, seed=0).backward(rng.normal(size=(1, 1, 2, 2)))
