"""Tests for repro.plan: execution plans, planned views, and the tuner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PlanError
from repro.fftcore import CountingFFTBackend
from repro.nn import (
    BlockCirculantConv2D,
    BlockCirculantDense,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.plan import (
    ExecutionPlan,
    LayerPlan,
    apply_plan_inplace,
    calibrate_backends,
    planned_view,
    sweep_table,
    tune,
    validate_prior,
)
from repro.quant import ActivationQuantizer, quantization_format, quantized_view


def _fc_net(seed: int = 0, backend=None) -> Sequential:
    return Sequential(
        BlockCirculantDense(32, 32, 8, seed=seed, backend=backend),
        ReLU(),
        BlockCirculantDense(32, 16, 4, seed=seed + 1, backend=backend),
    )


def _mixed_net(seed: int = 0, backend=None) -> Sequential:
    return Sequential(
        BlockCirculantConv2D(4, 8, 3, block_size=4, padding=1, seed=seed,
                             backend=backend),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        BlockCirculantDense(8 * 3 * 3, 16, 4, seed=seed + 1, backend=backend),
        ReLU(),
        Dense(16, 10, seed=seed + 2),
    )


class TestExecutionPlan:
    def test_uniform_and_len(self):
        plan = ExecutionPlan.uniform(3, backend="numpy", bits=12)
        assert len(plan) == 3
        assert all(entry.backend == "numpy" for entry in plan)
        assert plan[1].bits == 12

    def test_json_round_trip(self):
        plan = ExecutionPlan(
            (LayerPlan(backend="radix2", bits=10, block_size=8),
             LayerPlan()),
            activation_bits=12,
        )
        assert ExecutionPlan.from_json(plan.to_json()) == plan
        assert ExecutionPlan.loads(plan.dumps()) == plan

    def test_from_json_rejects_garbage(self):
        with pytest.raises(PlanError):
            ExecutionPlan.from_json({"not": "a plan"})
        with pytest.raises(PlanError):
            ExecutionPlan.from_json(
                {"version": 99, "layers": []}
            )
        with pytest.raises(PlanError):
            ExecutionPlan.from_json(
                {"layers": [{"backend": "numpy", "volts": 0.55}]}
            )

    def test_from_network_reads_construction(self):
        net = _mixed_net(backend="radix2")
        plan = ExecutionPlan.from_network(net)
        # conv, dense, plain Dense — in planned_layers order.
        assert len(plan) == 3
        assert plan[0].backend == "radix2" and plan[0].block_size == 4
        assert plan[1].backend == "radix2" and plan[1].block_size == 4
        assert plan[2].backend is None and plan[2].block_size is None
        assert plan.activation_bits is None

    def test_from_network_resolves_default_backend(self):
        plan = ExecutionPlan.from_network(_fc_net())
        assert plan[0].backend == "numpy"

    def test_with_layer(self):
        plan = ExecutionPlan.uniform(2, backend="numpy")
        flipped = plan.with_layer(1, backend="radix2")
        assert flipped[0].backend == "numpy"
        assert flipped[1].backend == "radix2"
        assert plan[1].backend == "numpy"  # original untouched

    def test_describe_mentions_every_layer(self):
        text = ExecutionPlan.uniform(2, backend="numpy", bits=8).describe()
        assert "[0]" in text and "[1]" in text and "numpy" in text


class TestApplyPlan:
    def test_wrong_length_raises(self):
        with pytest.raises(PlanError):
            apply_plan_inplace(_fc_net(), ExecutionPlan.uniform(5))

    def test_backend_on_non_spectral_raises(self):
        net = Sequential(Dense(8, 4, seed=0))
        plan = ExecutionPlan((LayerPlan(backend="numpy"),))
        with pytest.raises(PlanError):
            apply_plan_inplace(net, plan)

    def test_unknown_backend_raises(self):
        from repro.errors import BackendError

        net = _fc_net()
        plan = ExecutionPlan(
            (LayerPlan(backend="fftw"), LayerPlan())
        )
        with pytest.raises(BackendError):
            apply_plan_inplace(net, plan)

    def test_block_size_mismatch_raises(self):
        net = _fc_net()
        plan = ExecutionPlan(
            (LayerPlan(block_size=16), LayerPlan())
        )
        with pytest.raises(PlanError):
            apply_plan_inplace(net, plan)

    def test_activation_bits_without_quantizers_raises(self):
        plan = ExecutionPlan.uniform(2, activation_bits=8)
        with pytest.raises(PlanError):
            apply_plan_inplace(_fc_net(), plan)

    def test_apply_sets_backend_and_bits(self):
        net = _fc_net(backend="radix2")
        plan = ExecutionPlan(
            (LayerPlan(backend="numpy", bits=12), LayerPlan(bits=10))
        )
        apply_plan_inplace(net, plan)
        assert net.layers[0].backend == "numpy"
        assert net.layers[0].weight_quant_bits == 12
        assert net.layers[2].backend == "radix2"  # untouched
        assert net.layers[2].weight_quant_bits == 10
        assert net.execution_plan is plan
        # Mixed word lengths: no network-level marker is invented.
        assert getattr(net, "weight_quant_bits", None) is None

    def test_uniform_bits_sets_network_marker(self):
        net = _fc_net()
        apply_plan_inplace(net, ExecutionPlan.uniform(2, bits=8))
        assert net.weight_quant_bits == 8
        assert quantization_format(net) == {
            "weight_bits": 8, "activation_bits": None,
        }

    def test_quantisation_bumps_versions(self):
        net = _fc_net()
        before = net.layers[0].weight.version
        apply_plan_inplace(net, ExecutionPlan.uniform(2, bits=8))
        assert net.layers[0].weight.version > before

    def test_compile_inference_accepts_plan(self, rng):
        net = _fc_net(backend="radix2")
        plan = ExecutionPlan(
            (LayerPlan(backend="numpy"), LayerPlan(backend="numpy"))
        )
        net.compile_inference(plan=plan)
        assert net.is_compiled
        assert net.execution_plan is plan
        assert net.layers[0].backend == "numpy"
        x = rng.normal(size=(3, 32))
        assert net.inference_forward(x).shape == (3, 16)


class TestPlannedView:
    def test_matches_quantized_view_bit_for_bit(self, rng):
        source = _fc_net()
        x = rng.normal(size=(4, 32))
        plan = ExecutionPlan.uniform(2, bits=10, activation_bits=8)
        view = planned_view(source, plan, compile=False)
        twin = quantized_view(source, 10, 8)
        np.testing.assert_array_equal(
            view.inference_forward(x), twin.inference_forward(x)
        )

    def test_source_untouched(self, rng):
        source = _fc_net()
        before = [param.value.copy() for param in source.parameters()]
        planned_view(
            source, ExecutionPlan.uniform(2, bits=6, activation_bits=6)
        )
        for param, old in zip(source.parameters(), before):
            np.testing.assert_array_equal(param.value, old)
        assert source.execution_plan is None

    def test_interleaves_activation_quantizers(self):
        view = planned_view(
            _fc_net(), ExecutionPlan.uniform(2, activation_bits=8),
            compile=False,
        )
        quantizers = [
            layer for layer in view.layers
            if isinstance(layer, ActivationQuantizer)
        ]
        assert len(quantizers) == 4  # one before, one after each layer
        assert all(q.total_bits == 8 for q in quantizers)

    def test_backend_only_view_is_bit_identical(self, rng):
        source = _fc_net(backend="radix2")
        x = rng.normal(size=(2, 32))
        view = planned_view(
            source,
            ExecutionPlan(
                (LayerPlan(backend="numpy"), LayerPlan(backend="numpy"))
            ),
        )
        np.testing.assert_allclose(
            view.inference_forward(x),
            source.inference_forward(x),
            atol=1e-9,
        )

    def test_compiled_by_default_and_runs_planned_backend(self, rng):
        counting = CountingFFTBackend("numpy")
        source = _fc_net()
        view = planned_view(
            source,
            ExecutionPlan(
                (LayerPlan(backend=counting), LayerPlan())
            ),
        )
        assert view.is_compiled
        counting.reset()
        view.inference_forward(rng.normal(size=(2, 32)))
        # Weight spectrum cached at compile; only activation transforms run.
        assert counting.counts["rfft"] == 1
        assert counting.counts["irfft"] == 1

    def test_plan_backend_accepts_instances_uncompiled_only(self):
        # Plans persisted to JSON need names, but apply accepts anything
        # get_backend resolves — instances included (tuning/debug hooks).
        counting = CountingFFTBackend("numpy")
        view = planned_view(
            _fc_net(),
            ExecutionPlan((LayerPlan(backend=counting), LayerPlan())),
            compile=False,
        )
        assert view.layers[0].backend is counting


class TestTuner:
    def test_calibration_covers_requested_grid(self):
        calibration = calibrate_backends(
            ("numpy", "radix2"), (8, 4, 8), repeats=1, batch=8
        )
        assert set(calibration.fft_seconds) == {
            ("numpy", 4), ("numpy", 8), ("radix2", 4), ("radix2", 8),
        }
        assert all(t > 0 for t in calibration.fft_seconds.values())
        assert calibration.cmult_seconds > 0

    def test_tune_prefers_fast_backend(self, rng):
        net = _fc_net(backend="radix2")
        x = rng.normal(size=(4, 32))
        report = tune(
            net, x, backends=("numpy", "radix2"), repeats=2, max_plans=6
        )
        # The python radix-2 kernels are far slower than numpy.fft: the
        # winner must move every spectral layer off radix2.
        assert all(entry.backend == "numpy" for entry in report.best)
        assert report.best_seconds <= report.baseline_seconds
        assert any(c.label == "as-built" for c in report.candidates)
        assert all(c.admitted for c in report.candidates)

    def test_tune_report_is_jsonable(self, rng):
        import json

        net = _fc_net()
        report = tune(
            net, rng.normal(size=(2, 32)), backends=("numpy",), repeats=1
        )
        doc = json.loads(json.dumps(report.to_json()))
        assert doc["best"]["layers"]
        assert doc["candidates"]

    def test_tune_rejects_incompatible_tolerance(self, rng):
        net = _fc_net(backend="radix2")
        x = rng.normal(size=(2, 32))
        # An impossible tolerance rejects every candidate save the exact
        # reference duplicates; tolerance=-1 rejects even those.
        with pytest.raises(PlanError):
            tune(net, x, backends=("numpy", "radix2"), repeats=1,
                 tolerance=-1.0)

    def test_tune_energy_objective_picks_low_bits(self, rng):
        net = _fc_net()
        x = rng.normal(size=(2, 32))
        report = tune(
            net, x, backends=("numpy",), bits=(None, 8),
            objective="energy", latency_slack=10.0, repeats=1,
        )
        # With a huge latency slack the bits=8 candidate's quadratic
        # multiplier-energy saving must win the energy objective.
        assert all(entry.bits == 8 for entry in report.best)

    def test_tune_bad_objective(self, rng):
        with pytest.raises(PlanError):
            tune(_fc_net(), rng.normal(size=(1, 32)), objective="vibes")

    def test_sweep_table_and_prior_validation(self, rng):
        x = rng.normal(size=(2, 32))

        def build(k):
            return Sequential(
                BlockCirculantDense(32, 32, k, seed=0),
                ReLU(),
                BlockCirculantDense(32, 16, k, seed=1),
            )

        table = sweep_table(
            build, x, block_sizes=(4, 16), backends=("radix2",),
            bits=(None, 8), repeats=1,
        )
        assert len(table) == 2 * 1 * 2  # k × backend × bits
        for record in table:
            assert record["seconds"] > 0
            assert record["prior_seconds"] > 0
            assert record["prior_energy_j"] > 0
        agreement = validate_prior(table)
        assert set(agreement) == {("radix2", None), ("radix2", 8)}
        for value in agreement.values():
            assert 0.0 <= value <= 1.0
