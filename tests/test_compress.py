"""Tests for the compression baselines and storage accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compress import (
    LowRankDense,
    MagnitudePruner,
    SingleCirculantDense,
    StorageReport,
    block_circulant_storage,
    compression_ratio,
    dense_storage,
    fc_only_storage_saving,
    low_rank_factors,
    low_rank_params,
    low_rank_reconstruction_error,
    magnitude_mask,
    prune_network,
    pruned_storage,
    single_circulant_padded_size,
    single_circulant_storage_waste,
    whole_model_storage_saving,
)
from repro.errors import ConfigurationError
from repro.models import (
    CompressionPlan,
    alexnet_spec,
    default_alexnet_fc_plan,
)
from repro.nn import Dense, ReLU, Sequential
from tests.conftest import assert_layer_gradients


class TestStorageAccounting:
    def test_dense_storage_bits(self):
        report = dense_storage(1000, bits=32)
        assert report.total_bits == 32_000
        assert report.total_bytes == 4000.0

    def test_pruned_storage_includes_indices(self):
        report = pruned_storage(1000, sparsity=0.9, weight_bits=16,
                                index_bits=4)
        assert report.weight_params == 100
        assert report.total_bits == 100 * 20

    def test_pruning_effective_ratio_below_parameter_ratio(self):
        # The paper's §3.4 point: indices shrink pruning's real ratio.
        dense = dense_storage(10_000, bits=32)
        pruned = pruned_storage(10_000, sparsity=0.9)
        ratio = compression_ratio(dense, pruned)
        assert ratio < 10.0 * (32 / 16)  # below the index-free ideal

    def test_block_circulant_storage(self):
        spec = alexnet_spec()
        plan = default_alexnet_fc_plan()
        report = block_circulant_storage(spec, plan)
        assert report.weight_bits == 16
        assert report.weight_params == plan.total_compressed_params(spec)

    def test_alexnet_fits_fpga_after_compression(self):
        # §4.4: compressed AlexNet is ~4 MB and fits on-chip.
        report = block_circulant_storage(
            alexnet_spec(), default_alexnet_fc_plan()
        )
        assert report.megabytes < 10.0
        uncompressed = dense_storage(alexnet_spec().total_dense_params, 32)
        assert uncompressed.megabytes > 200.0

    def test_fc_saving_band(self):
        saving = fc_only_storage_saving(
            alexnet_spec(), default_alexnet_fc_plan()
        )
        assert 400.0 <= saving <= 4000.0

    def test_whole_model_band(self):
        saving = whole_model_storage_saving(
            alexnet_spec(), default_alexnet_fc_plan()
        )
        assert 30.0 <= saving <= 50.0

    def test_invalid_sparsity(self):
        with pytest.raises(ConfigurationError):
            pruned_storage(100, sparsity=1.0)

    def test_zero_bit_compressed_rejected(self):
        with pytest.raises(ConfigurationError):
            compression_ratio(
                dense_storage(10), StorageReport("x", 0, 16)
            )


class TestMagnitudePruning:
    def test_mask_keeps_largest(self):
        weights = np.array([0.1, -5.0, 0.2, 3.0, -0.05])
        mask = magnitude_mask(weights, sparsity=0.6)
        np.testing.assert_array_equal(
            mask, [False, True, False, True, False]
        )

    def test_mask_exact_count(self, rng):
        weights = rng.normal(size=(10, 10))
        mask = magnitude_mask(weights, sparsity=0.37)
        assert mask.sum() == 100 - 37

    def test_zero_sparsity_keeps_all(self, rng):
        mask = magnitude_mask(rng.normal(size=20), 0.0)
        assert mask.all()

    def test_prune_network_zeroes_weights(self, rng):
        net = Sequential(Dense(10, 8, seed=0), ReLU(), Dense(8, 4, seed=1))
        prune_network(net, sparsity=0.75)
        for layer in (net.layers[0], net.layers[2]):
            zero_fraction = float(np.mean(layer.weight.value == 0.0))
            assert zero_fraction == pytest.approx(0.75, abs=0.02)

    def test_pruner_masks_survive_updates(self, rng):
        net = Sequential(Dense(10, 8, seed=0))
        pruner = MagnitudePruner(net, sparsity=0.5)
        pruner.prune()
        # Simulate an optimiser step perturbing everything.
        net.layers[0].weight.value += rng.normal(size=(8, 10))
        pruner.apply_masks()
        report = pruner.report()
        assert report.sparsity == pytest.approx(0.5, abs=0.02)

    def test_report_and_storage(self):
        net = Sequential(Dense(20, 20, seed=0))
        pruner = MagnitudePruner(net, sparsity=0.9)
        pruner.prune()
        report = pruner.report()
        assert report.parameter_reduction == pytest.approx(10.0, rel=0.05)
        storage = pruner.storage()
        assert storage.index_bits_total > 0

    def test_pruned_network_still_learns(self, rng):
        # The prune -> retrain loop the paper calls extra training cost.
        from repro.nn import Adam, SoftmaxCrossEntropyLoss, Trainer

        centers = rng.normal(scale=2.0, size=(3, 10))
        labels = rng.integers(0, 3, size=150)
        data = centers[labels] + rng.normal(scale=0.3, size=(150, 10))
        net = Sequential(Dense(10, 24, seed=0), ReLU(), Dense(24, 3, seed=1))
        trainer = Trainer(net, Adam(net.parameters(), lr=0.01), seed=0)
        trainer.fit(data, labels, epochs=10)
        pruner = MagnitudePruner(net, sparsity=0.6)
        pruner.prune()
        loss = SoftmaxCrossEntropyLoss()
        optimizer = Adam(net.parameters(), lr=0.005)
        for _ in range(10):
            logits = net(data)
            loss.forward(logits, labels)
            optimizer.zero_grad()
            net.backward(loss.backward())
            optimizer.step()
            pruner.apply_masks()
        assert trainer.evaluate(data, labels) > 0.9
        assert pruner.report().sparsity == pytest.approx(0.6, abs=0.02)

    def test_invalid_sparsity(self):
        with pytest.raises(ConfigurationError):
            magnitude_mask(np.ones(4), 1.0)


class TestLowRank:
    def test_factor_shapes_and_params(self, rng):
        u, v = low_rank_factors(rng.normal(size=(12, 20)), rank=5)
        assert u.shape == (12, 5)
        assert v.shape == (5, 20)
        assert low_rank_params(12, 20, 5) == 5 * 32

    def test_full_rank_is_exact(self, rng):
        w = rng.normal(size=(8, 10))
        assert low_rank_reconstruction_error(w, 8) < 1e-10

    def test_error_decreases_with_rank(self, rng):
        w = rng.normal(size=(16, 16))
        errors = [low_rank_reconstruction_error(w, r) for r in (2, 4, 8, 16)]
        assert errors == sorted(errors, reverse=True)

    def test_eckart_young_optimality(self, rng):
        # SVD truncation error equals the tail singular values.
        w = rng.normal(size=(10, 10))
        u, v = low_rank_factors(w, 3)
        singular = np.linalg.svd(w, compute_uv=False)
        expected = np.sqrt(np.sum(singular[3:] ** 2))
        assert np.linalg.norm(w - u @ v) == pytest.approx(expected, rel=1e-9)

    def test_low_rank_layer_gradients(self, rng):
        layer = LowRankDense(8, 6, rank=3, seed=0)
        assert_layer_gradients(layer, rng.normal(size=(3, 8)), rng)

    def test_invalid_rank(self, rng):
        with pytest.raises(ConfigurationError):
            low_rank_factors(rng.normal(size=(4, 4)), 5)
        with pytest.raises(ConfigurationError):
            LowRankDense(4, 4, rank=0)


class TestSingleCirculantBaseline:
    def test_padded_size_is_max(self):
        assert single_circulant_padded_size(9216, 4096) == 9216

    def test_storage_waste_formula(self):
        # Fig 4a: padding wastes (1 - min/max) of the computation.
        assert single_circulant_storage_waste(100, 100) == 0.0
        assert single_circulant_storage_waste(9216, 4096) == pytest.approx(
            1.0 - 4096 / 9216
        )

    def test_forward_matches_padded_circulant(self, rng):
        from repro.circulant import CirculantMatrix

        layer = SingleCirculantDense(6, 4, bias=False, seed=0)
        x = rng.normal(size=(3, 6))
        dense = CirculantMatrix(layer.weight.value).to_dense()
        padded = np.zeros((3, 6))
        padded[:, :6] = x
        expected = (padded @ dense.T)[:, :4]
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-9)

    def test_gradients(self, rng):
        layer = SingleCirculantDense(6, 4, seed=1)
        assert_layer_gradients(layer, rng.normal(size=(2, 6)), rng)

    def test_block_circulant_avoids_padding_waste(self):
        # The paper's Fig 4 point: on a rectangular FC layer, [54]'s
        # padded square wastes 55% of its computation, while a
        # block-circulant grid with k dividing both dims has zero padding.
        from repro.circulant.ops import block_dims

        m, n, k = 4096, 9216, 1024
        waste = single_circulant_storage_waste(n, m)
        assert waste == pytest.approx(1.0 - m / n)
        p, q = block_dims(m, n, k)
        assert p * k == m and q * k == n  # no padded rows or columns

    def test_block_size_is_an_accuracy_compression_knob(self):
        # §2.4: block-circulant offers a *range* of storage points; the
        # single-circulant baseline has exactly one.
        from repro.models.descriptors import CompressionPlan, DenseSpec

        layer = DenseSpec("fc", 9216, 4096)
        sizes = [
            CompressionPlan(block_sizes={"fc": k}).compressed_params(layer)
            for k in (64, 256, 1024)
        ]
        assert sizes == sorted(sizes, reverse=True)
        assert len(set(sizes)) == 3

    def test_trains_on_toy_problem(self, rng):
        from repro.nn import Adam, Sequential, Trainer, ReLU, Dense

        centers = rng.normal(scale=2.0, size=(3, 12))
        labels = rng.integers(0, 3, size=120)
        data = centers[labels] + rng.normal(scale=0.3, size=(120, 12))
        net = Sequential(
            SingleCirculantDense(12, 16, seed=0), ReLU(),
            Dense(16, 3, seed=1),
        )
        trainer = Trainer(net, Adam(net.parameters(), lr=0.01), seed=0)
        trainer.fit(data, labels, epochs=15)
        assert trainer.evaluate(data, labels) > 0.9
