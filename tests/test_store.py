"""Tests for the model-artifact store (repro.store) and its plumbing:
codec round trips, chunked-array integrity (the zarr-style
compress → decompress → assert-equal suite), manifest error paths,
save/load bit-identity with zero FFTs recomputed on load, cache seeding,
content-hash versioning, and registry hot swap from disk."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.circulant import SpectralWeightCache
from repro.errors import ShapeError, StoreError, StoreIntegrityError
from repro.fftcore import CountingFFTBackend
from repro.nn import (
    AvgPool2D,
    BlockCirculantConv2D,
    BlockCirculantDense,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    Module,
    ReLU,
    Sequential,
    load_parameters,
    save_parameters,
)
from repro.quant import quantized_view
from repro.serving import ModelRegistry
from repro.store import (
    ArtifactStore,
    Codec,
    ZlibCodec,
    available_codecs,
    get_codec,
    layer_from_spec,
    layer_to_spec,
    load_artifact,
    read_chunked_array,
    read_manifest,
    register_codec,
    save_artifact,
    verify_artifact,
    verify_chunked_array,
    write_chunked_array,
)


def _fc_net(seed: int = 0) -> Sequential:
    return Sequential(
        BlockCirculantDense(32, 32, 8, seed=seed),
        ReLU(),
        BlockCirculantDense(32, 16, 4, seed=seed + 1),
    )


def _conv_net(seed: int = 0) -> Sequential:
    return Sequential(
        BlockCirculantConv2D(4, 8, 3, block_size=4, padding=1, seed=seed),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        BlockCirculantDense(8 * 3 * 3, 10, 2, seed=seed + 1),
    )


# ---------------------------------------------------------------------------
# Codecs
# ---------------------------------------------------------------------------

class TestCodecs:
    @pytest.mark.parametrize("name", available_codecs())
    def test_registered_codecs_round_trip_bytes(self, name, rng):
        codec = get_codec(name)
        for payload in (b"", b"\x00" * 1024, rng.bytes(10_000),
                        np.arange(257, dtype=np.float64).tobytes()):
            assert codec.decode(codec.encode(payload)) == payload

    @pytest.mark.parametrize("name", available_codecs())
    def test_registered_codecs_round_trip_arrays(self, name, rng):
        # The zarr/deeplake idiom: compress, decompress, assert_array_equal.
        codec = get_codec(name)
        array = rng.normal(size=(37, 11))
        raw = codec.decode(codec.encode(array.tobytes()))
        restored = np.frombuffer(raw, dtype=array.dtype).reshape(array.shape)
        np.testing.assert_array_equal(restored, array)

    def test_zlib_compresses_repetitive_data(self):
        data = np.zeros(4096, dtype=np.float64).tobytes()
        assert len(ZlibCodec().encode(data)) < len(data) // 10

    def test_zlib_rejects_bad_level(self):
        with pytest.raises(StoreError):
            ZlibCodec(level=17)

    def test_zlib_decode_of_garbage_raises_store_error(self):
        with pytest.raises(StoreError):
            ZlibCodec().decode(b"this is not deflate data")

    def test_unknown_codec_raises(self):
        with pytest.raises(StoreError, match="unknown codec"):
            get_codec("blosc-lz4-hc")

    def test_instances_pass_through(self):
        codec = ZlibCodec(level=1)
        assert get_codec(codec) is codec

    def test_register_rejects_duplicates_unless_replace(self):
        class Custom(Codec):
            name = "test-custom-codec"

            def encode(self, data: bytes) -> bytes:
                return bytes(data)

            def decode(self, data: bytes) -> bytes:
                return bytes(data)

        first = register_codec(Custom())
        with pytest.raises(StoreError, match="already registered"):
            register_codec(Custom())
        second = register_codec(Custom(), replace=True)
        assert get_codec("test-custom-codec") is second is not first


# ---------------------------------------------------------------------------
# Chunked arrays
# ---------------------------------------------------------------------------

class TestChunkedArrays:
    @pytest.mark.parametrize("codec", ["identity", "zlib"])
    @pytest.mark.parametrize("shape,dtype", [
        ((64, 7), np.float64),
        ((5, 3, 9), np.complex128),
        ((128,), np.int32),
        ((), np.float64),
        ((3, 0, 4), np.float64),
    ])
    def test_round_trip(self, tmp_path, rng, codec, shape, dtype):
        if np.issubdtype(dtype, np.complexfloating):
            array = (rng.normal(size=shape) + 1j * rng.normal(size=shape)
                     ).astype(dtype)
        else:
            array = rng.normal(0, 100, size=shape).astype(dtype)
        meta = write_chunked_array(array, tmp_path, "arr", codec=codec)
        out = read_chunked_array(tmp_path, meta)
        np.testing.assert_array_equal(out, array)
        assert out.dtype == array.dtype
        assert not out.flags.writeable

    def test_multi_chunk_split_and_round_trip(self, tmp_path, rng):
        array = rng.normal(size=(100, 16))  # 12.8 KiB, 1 KiB chunks
        meta = write_chunked_array(array, tmp_path, "arr", codec="zlib",
                                   chunk_bytes=1024)
        assert len(meta["chunks"]) == 13  # 8 rows per chunk, 100 rows
        assert sum(c["rows"] for c in meta["chunks"]) == 100
        np.testing.assert_array_equal(read_chunked_array(tmp_path, meta),
                                      array)

    def test_non_contiguous_input(self, tmp_path, rng):
        array = rng.normal(size=(12, 8)).T
        assert not array.flags.c_contiguous
        meta = write_chunked_array(array, tmp_path, "arr", codec="identity")
        np.testing.assert_array_equal(read_chunked_array(tmp_path, meta),
                                      array)

    def test_identity_mmap_is_zero_copy(self, tmp_path, rng):
        array = rng.normal(size=(40, 9))
        meta = write_chunked_array(array, tmp_path, "arr", codec="identity",
                                   chunk_bytes=512)
        out = read_chunked_array(tmp_path, meta, mmap=True)
        assert isinstance(out, np.memmap)
        assert not out.flags.writeable
        np.testing.assert_array_equal(out, array)

    def test_mmap_on_compressed_codec_falls_back_to_read(self, tmp_path, rng):
        array = rng.normal(size=(40, 9))
        meta = write_chunked_array(array, tmp_path, "arr", codec="zlib")
        out = read_chunked_array(tmp_path, meta, mmap=True)
        assert not isinstance(out, np.memmap)
        np.testing.assert_array_equal(out, array)

    @pytest.mark.parametrize("codec", ["identity", "zlib"])
    def test_corrupted_chunk_raises_integrity_error(self, tmp_path, rng,
                                                    codec):
        array = rng.normal(size=(64, 8))
        meta = write_chunked_array(array, tmp_path, "arr", codec=codec,
                                   chunk_bytes=1024)
        path = tmp_path / meta["file"]
        blob = bytearray(path.read_bytes())
        target = meta["chunks"][1]
        blob[target["offset"] + 3] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreIntegrityError, match="chunk 1"):
            read_chunked_array(tmp_path, meta)
        with pytest.raises(StoreIntegrityError, match="chunk 1"):
            verify_chunked_array(tmp_path, meta)

    def test_truncated_file_raises_integrity_error(self, tmp_path, rng):
        array = rng.normal(size=(64, 8))
        meta = write_chunked_array(array, tmp_path, "arr", codec="zlib",
                                   chunk_bytes=1024)
        path = tmp_path / meta["file"]
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(StoreIntegrityError, match="truncated"):
            read_chunked_array(tmp_path, meta)

    def test_mmap_skips_verification_unless_forced(self, tmp_path, rng):
        array = rng.normal(size=(64, 8))
        meta = write_chunked_array(array, tmp_path, "arr", codec="identity",
                                   chunk_bytes=1024)
        path = tmp_path / meta["file"]
        blob = bytearray(path.read_bytes())
        blob[10] ^= 0xFF
        path.write_bytes(bytes(blob))
        # Default mapping defers integrity to the manifest's CRCs on demand.
        read_chunked_array(tmp_path, meta, mmap=True)
        with pytest.raises(StoreIntegrityError):
            read_chunked_array(tmp_path, meta, mmap=True, verify=True)

    def test_missing_file_raises_store_error(self, tmp_path, rng):
        meta = write_chunked_array(rng.normal(size=(4, 4)), tmp_path, "arr")
        (tmp_path / meta["file"]).unlink()
        with pytest.raises(StoreError, match="missing chunk file"):
            read_chunked_array(tmp_path, meta)

    def test_bad_chunk_bytes_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            write_chunked_array(np.zeros(4), tmp_path, "arr", chunk_bytes=0)


# ---------------------------------------------------------------------------
# Manifest + layer specs
# ---------------------------------------------------------------------------

class TestLayerSpecs:
    def test_full_layer_zoo_round_trips(self):
        net = Sequential(
            Conv2D(2, 3, 3, stride=1, padding=1, seed=0),
            MaxPool2D(2),
            AvgPool2D(2, 1),
            Dropout(0.25),
            Flatten(),
            Dense(27, 12, seed=0),
            Sequential(BlockCirculantDense(12, 6, 2, seed=1, bias=False)),
        )
        rebuilt = layer_from_spec(layer_to_spec(net))
        assert [type(a) for a in rebuilt.layers] == \
            [type(a) for a in net.layers]
        inner = rebuilt.layers[-1].layers[0]
        assert (inner.in_features, inner.out_features,
                inner.block_size) == (12, 6, 2)
        assert inner.bias is None
        assert rebuilt.layers[3].rate == 0.25
        # Rebuilt parameterised layers are zero placeholders, not draws.
        assert np.all(rebuilt.layers[0].weight.value == 0.0)

    def test_unsupported_layer_raises(self):
        class Exotic(Module):
            def forward(self, x):
                return x

        with pytest.raises(StoreError, match="Exotic"):
            layer_to_spec(Sequential(Exotic()))

    def test_unknown_spec_type_raises(self):
        with pytest.raises(StoreError, match="unknown layer type"):
            layer_from_spec({"type": "FutureLayer", "config": {}})

    def test_custom_backend_instance_not_persistable(self, tmp_path):
        net = Sequential(
            BlockCirculantDense(8, 8, 4, seed=0,
                                backend=CountingFFTBackend("numpy"))
        ).compile_inference()
        with pytest.raises(StoreError, match="unregistered FFT backend"):
            save_artifact(net, tmp_path)


class TestManifestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StoreError, match="not an artifact directory"):
            read_manifest(tmp_path)

    def test_truncated_json(self, tmp_path):
        net = _fc_net().compile_inference()
        save_artifact(net, tmp_path)
        manifest_path = tmp_path / "manifest.json"
        text = manifest_path.read_text()
        manifest_path.write_text(text[: len(text) // 2])
        with pytest.raises(StoreError, match="truncated or corrupted"):
            read_manifest(tmp_path)
        with pytest.raises(StoreError):
            load_artifact(tmp_path)

    def test_missing_keys(self, tmp_path):
        net = _fc_net().compile_inference()
        save_artifact(net, tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        del manifest["spectra"]
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="missing required keys"):
            read_manifest(tmp_path)

    def test_unknown_format_version(self, tmp_path):
        net = _fc_net().compile_inference()
        save_artifact(net, tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["format"] = "repro.store/999"
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="not supported"):
            read_manifest(tmp_path)

    def test_verify_artifact_catches_hand_edited_manifest(self, tmp_path):
        net = _fc_net().compile_inference()
        save_artifact(net, tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["serving_signature"]["layers"] = 99
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreIntegrityError, match="content hash"):
            verify_artifact(tmp_path)

    def test_verify_artifact_passes_on_fresh_save(self, tmp_path):
        net = _conv_net().compile_inference()
        manifest = save_artifact(net, tmp_path)
        assert verify_artifact(tmp_path)["content_hash"] == \
            manifest["content_hash"]


# ---------------------------------------------------------------------------
# Artifact save/load round trips
# ---------------------------------------------------------------------------

class TestArtifactRoundTrip:
    @pytest.mark.parametrize("codec,mmap", [
        ("zlib", False), ("identity", True), ("identity", False),
    ])
    def test_fc_bit_identical(self, tmp_path, rng, codec, mmap):
        net = _fc_net()
        x = rng.normal(size=(6, 32))
        net.compile_inference()
        expected = net.inference_forward(x)
        save_artifact(net, tmp_path, codec=codec)
        loaded = load_artifact(tmp_path, mmap=mmap)
        np.testing.assert_array_equal(loaded.inference_forward(x), expected)
        assert all(p.frozen for p in loaded.parameters())
        assert loaded.serving_signature() == net.serving_signature()

    def test_conv_bit_identical(self, tmp_path, rng):
        net = _conv_net()
        x = rng.normal(size=(3, 4, 6, 6))
        net.compile_inference()
        expected = net.inference_forward(x)
        save_artifact(net, tmp_path, codec="identity")
        loaded = load_artifact(tmp_path)
        np.testing.assert_array_equal(loaded.inference_forward(x), expected)

    def test_padded_non_divisible_blocks_bit_identical(self, tmp_path, rng):
        # Neither the FC dims (10 -> 7, k=4) nor the CONV channels
        # (5 -> 6, k=4) divide the block size: the padded defining-vector
        # grids and their spectra must survive the store unchanged.
        net = Sequential(
            BlockCirculantConv2D(5, 6, 3, block_size=4, padding=1, seed=3),
            ReLU(),
            Flatten(),
            BlockCirculantDense(6 * 5 * 5, 7, 4, seed=4),
        )
        x = rng.normal(size=(2, 5, 5, 5))
        net.compile_inference()
        expected = net.inference_forward(x)
        save_artifact(net, tmp_path)
        loaded = load_artifact(tmp_path)
        np.testing.assert_array_equal(loaded.inference_forward(x), expected)

    def test_quantized_view_round_trips(self, tmp_path, rng):
        net = _fc_net().compile_inference()
        qnet = quantized_view(net, weight_bits=8, activation_bits=8)
        qnet.compile_inference()
        x = rng.normal(size=(5, 32))
        expected = qnet.inference_forward(x)
        manifest = save_artifact(qnet, tmp_path)
        assert manifest["quantization"] == {
            "weight_bits": 8, "activation_bits": 8,
        }
        loaded = load_artifact(tmp_path)
        np.testing.assert_array_equal(loaded.inference_forward(x), expected)
        assert loaded.weight_quant_bits == 8

    def test_load_runs_zero_ffts(self, tmp_path, rng):
        net = _conv_net()
        x = rng.normal(size=(3, 4, 6, 6))
        net.compile_inference()
        expected = net.inference_forward(x)
        save_artifact(net, tmp_path)
        counting = CountingFFTBackend("numpy")
        loaded = load_artifact(tmp_path, backend=counting)
        assert counting.total() == 0  # the whole point of the store
        np.testing.assert_array_equal(loaded.inference_forward(x), expected)
        # The first forward spent transforms on activations only, never on
        # weights: a second forward (spectra now indisputably warm) costs
        # exactly the same number of calls.
        first_forward = counting.total()
        assert first_forward > 0
        counting.reset()
        loaded.inference_forward(x)
        assert counting.total() == first_forward

    def test_save_requires_compiled_network(self, tmp_path):
        with pytest.raises(StoreError, match="compiled network"):
            save_artifact(_fc_net(), tmp_path)

    def test_save_refuses_overwrite_by_default(self, tmp_path, rng):
        net = _fc_net().compile_inference()
        save_artifact(net, tmp_path)
        with pytest.raises(StoreError, match="already holds an artifact"):
            save_artifact(net, tmp_path)
        save_artifact(net, tmp_path, overwrite=True)

    def test_corrupted_parameter_chunk_fails_load(self, tmp_path, rng):
        net = _fc_net().compile_inference()
        manifest = save_artifact(net, tmp_path)
        record = manifest["parameters"][0]
        path = tmp_path / record["array"]["file"]
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreIntegrityError):
            load_artifact(tmp_path, mmap=False)
        with pytest.raises(StoreIntegrityError):
            verify_artifact(tmp_path)

    def test_spectrum_seeded_not_recomputed(self, tmp_path, rng):
        # The loaded spectrum IS the stored frequency-major buffer: its
        # values match a fresh compile bit-for-bit.
        net = _fc_net()
        net.compile_inference()
        save_artifact(net, tmp_path, codec="identity")
        loaded = load_artifact(tmp_path)
        for (_, fresh_layer), (_, loaded_layer) in zip(
            net.spectral_layers(), loaded.spectral_layers()
        ):
            fresh = fresh_layer.spectral_cache.spectrum(
                fresh_layer.weight, fresh_layer.backend)
            stored = loaded_layer.spectral_cache.spectrum(
                loaded_layer.weight, loaded_layer.backend)
            np.testing.assert_array_equal(stored, fresh)
            # Frequency-major memory: the (f, p, q) transpose of an FC
            # spectrum is the contiguous buffer, mapped straight from disk.
            assert stored.transpose(2, 0, 1).flags.c_contiguous


# ---------------------------------------------------------------------------
# SpectralWeightCache.seed
# ---------------------------------------------------------------------------

class TestCacheSeed:
    def test_seeded_spectrum_served_verbatim(self):
        layer = BlockCirculantDense(16, 8, 4, seed=0)
        counting = CountingFFTBackend("numpy")
        reference = counting.rfft(layer.weight.value)
        counting.reset()
        cache = SpectralWeightCache()
        cache.seed(layer.weight, reference, backend=counting)
        served = cache.spectrum(layer.weight, counting)
        assert counting.total() == 0
        np.testing.assert_array_equal(served, reference)
        assert not served.flags.writeable

    def test_seed_rejects_wrong_shape_and_dtype(self):
        layer = BlockCirculantDense(16, 8, 4, seed=0)
        cache = SpectralWeightCache()
        with pytest.raises(ShapeError):
            cache.seed(layer.weight, np.zeros((2, 4, 99), dtype=complex))
        with pytest.raises(ShapeError):
            cache.seed(layer.weight, np.zeros((2, 4, 3)))  # real, not complex

    def test_seeded_entry_goes_stale_with_the_parameter(self):
        layer = BlockCirculantDense(16, 8, 4, seed=0)
        counting = CountingFFTBackend("numpy")
        cache = SpectralWeightCache()
        cache.seed(layer.weight, counting.rfft(layer.weight.value),
                   backend=counting)
        counting.reset()
        layer.weight.value = np.ones_like(layer.weight.value)
        refreshed = cache.spectrum(layer.weight, counting)
        assert counting.counts["rfft"] == 1  # recomputed, not served stale
        np.testing.assert_array_equal(
            refreshed, counting.inner.rfft(layer.weight.value))


# ---------------------------------------------------------------------------
# load_parameters on a compiled network (thaw-and-reload contract)
# ---------------------------------------------------------------------------

class TestCompiledReload:
    def test_load_parameters_thaws_and_invalidates_spectra(self, tmp_path,
                                                           rng):
        donor = _fc_net(seed=7)
        npz = tmp_path / "weights.npz"
        save_parameters(donor, npz)

        net = _fc_net(seed=0)
        net.compile_inference()
        assert all(p.frozen for p in net.parameters())
        load_parameters(net, npz)
        # Thawed: each parameter got a fresh writable array + version bump.
        assert all(not p.frozen for p in net.parameters())
        x = rng.normal(size=(4, 32))
        expected = donor.inference_forward(x)
        np.testing.assert_array_equal(net.inference_forward(x), expected)
        # Serving re-froze each weight as its spectrum refreshed; biases
        # stay writable until the next compile_inference().
        for _, layer in net.spectral_layers():
            assert layer.weight.frozen
            assert not layer.bias.frozen


# ---------------------------------------------------------------------------
# ArtifactStore versioning
# ---------------------------------------------------------------------------

class TestArtifactStore:
    def test_publish_is_idempotent(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        net = _fc_net().compile_inference()
        first = store.publish("fc", net)
        second = store.publish("fc", net)
        assert first == second
        assert store.versions("fc") == [first.name]
        assert len(first.name) == 12

    def test_new_content_gets_new_version(self, tmp_path, rng):
        store = ArtifactStore(tmp_path / "store")
        net = _fc_net().compile_inference()
        v1 = store.publish("fc", net)
        net.layers[0].weight.value = rng.normal(
            size=net.layers[0].weight.value.shape)
        net.compile_inference()
        v2 = store.publish("fc", net)
        assert v1 != v2
        assert store.versions("fc") == [v1.name, v2.name]
        assert store.latest("fc") == v2

    def test_load_round_trips(self, tmp_path, rng):
        store = ArtifactStore(tmp_path / "store")
        net = _conv_net().compile_inference()
        x = rng.normal(size=(2, 4, 6, 6))
        expected = net.inference_forward(x)
        store.publish("conv", net)
        loaded = store.load("conv")
        np.testing.assert_array_equal(loaded.inference_forward(x), expected)

    def test_unknown_model_and_version_raise(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(StoreError):
            store.versions("ghost")
        net = _fc_net().compile_inference()
        store.publish("fc", net)
        with pytest.raises(StoreError):
            store.path("fc", "definitelynot")

    def test_models_listing(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.models() == []
        net = _fc_net().compile_inference()
        store.publish("b-model", net)
        store.publish("a-model", net)
        assert store.models() == ["a-model", "b-model"]


# ---------------------------------------------------------------------------
# ModelRegistry integration
# ---------------------------------------------------------------------------

class TestRegistryFromStore:
    def test_load_endpoint_serves_without_compiling(self, tmp_path, rng):
        net = _fc_net()
        x = rng.normal(size=(4, 32))
        net.compile_inference()
        expected = net.inference_forward(x)
        save_artifact(net, tmp_path, codec="identity")

        registry = ModelRegistry()
        served = registry.load_endpoint("fc", tmp_path)
        assert registry.generation("fc") == 0
        np.testing.assert_array_equal(
            registry.get("fc").inference_forward(x), expected)
        assert all(p.frozen for p in served.parameters())

    def test_swap_from_store_and_rollback(self, tmp_path, rng):
        store = ArtifactStore(tmp_path / "store")
        x = rng.normal(size=(4, 32))
        net_v1 = _fc_net(seed=0)
        net_v1.compile_inference()
        expected_v1 = net_v1.inference_forward(x)
        v1 = store.publish("fc", net_v1)
        net_v2 = _fc_net(seed=9)
        net_v2.compile_inference()
        expected_v2 = net_v2.inference_forward(x)
        v2 = store.publish("fc", net_v2)

        registry = ModelRegistry()
        registry.load_endpoint("fc", v1)
        old = registry.swap_from_store("fc", v2)
        assert registry.generation("fc") == 1
        np.testing.assert_array_equal(
            registry.get("fc").inference_forward(x), expected_v2)
        np.testing.assert_array_equal(
            old.inference_forward(x), expected_v1)
        # Rollback is just another swap, pointed at the old version dir.
        registry.swap_from_store("fc", v1)
        assert registry.generation("fc") == 2
        np.testing.assert_array_equal(
            registry.get("fc").inference_forward(x), expected_v1)


class TestExecutionPlanPersistence:
    """The plan spine survives the store: save → load → apply_plan."""

    def test_manifest_records_plan(self, tmp_path):
        from repro.plan import ExecutionPlan, LayerPlan, planned_view

        net = _fc_net()
        plan = ExecutionPlan(
            layers=(LayerPlan(backend="numpy", bits=10),
                    LayerPlan(backend="radix2", bits=8)),
        )
        view = planned_view(net, plan)
        manifest = save_artifact(view, tmp_path)
        doc = manifest["execution_plan"]
        assert [entry["backend"] for entry in doc["layers"]] == \
            ["numpy", "radix2"]
        assert [entry["bits"] for entry in doc["layers"]] == [10, 8]

    def test_plan_save_load_apply_bit_identical(self, tmp_path, rng):
        from repro.plan import ExecutionPlan, planned_view

        # Tune-shaped plan: mixed backends, mixed word lengths.
        net = _fc_net()
        plan = ExecutionPlan.from_network(net) \
            .with_layer(0, backend="numpy", bits=10) \
            .with_layer(1, backend="radix2", bits=8)
        view = planned_view(net, plan)
        x = rng.normal(size=(5, 32))
        expected = view.inference_forward(x)

        save_artifact(view, tmp_path, codec="identity")
        loaded = load_artifact(tmp_path)
        # The stamp round-trips and the outputs are bit-identical.
        assert loaded.execution_plan == view.execution_plan
        np.testing.assert_array_equal(loaded.inference_forward(x), expected)

        # Serve the loaded artifact, then re-plan the endpoint through the
        # registry: the same plan applied to the same source is a no-op in
        # outputs, and the endpoint records it.
        registry = ModelRegistry()
        registry.register("fc", loaded, compile=False)
        served = registry.apply_plan("fc", loaded.execution_plan)
        assert registry.applied_plan("fc") == view.execution_plan
        np.testing.assert_array_equal(
            served.inference_forward(x), expected)
        np.testing.assert_array_equal(
            registry.get("fc").inference_forward(x), expected)

    def test_backend_override_rewrites_stamp(self, tmp_path):
        net = _fc_net()
        net.compile_inference()
        save_artifact(net, tmp_path)
        loaded = load_artifact(tmp_path, backend="radix2")
        assert all(entry.backend == "radix2"
                   for entry in loaded.execution_plan)
        counting = CountingFFTBackend("numpy")
        hooked = load_artifact(tmp_path, backend=counting)
        # An unregistered instance cannot be named in a portable stamp.
        assert all(entry.backend is None
                   for entry in hooked.execution_plan)

    def test_save_rejects_unregistered_backend_instance(self, tmp_path):
        counting = CountingFFTBackend("numpy")
        net = Sequential(
            BlockCirculantDense(16, 8, 4, seed=0, backend=counting),
        )
        net.compile_inference()
        with pytest.raises(StoreError, match="unregistered"):
            save_artifact(net, tmp_path)

    def test_corrupt_plan_entry_count_raises(self, tmp_path):
        from repro.store.manifest import MANIFEST_FILE, write_manifest

        net = _fc_net().compile_inference()
        save_artifact(net, tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_FILE).read_text())
        manifest["execution_plan"]["layers"].append(
            {"backend": None, "bits": None, "block_size": None})
        del manifest["content_hash"]
        write_manifest(tmp_path, manifest)
        with pytest.raises(StoreError, match="layer entries"):
            load_artifact(tmp_path)
