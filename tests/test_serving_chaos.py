"""Seeded chaos soak: random kills, wedges and overload bursts.

One bounded scenario (a few seconds of wall clock) drives the whole
resilience stack at once: a seeded schedule alternates SIGKILLs of
random workers, injected wedges (gate-parked batches the watchdog must
kill), and overload bursts past the admission bound — while client
threads keep submitting. The invariant under test is the tentpole
promise: with retries on, *faults are invisible* — every admitted
request resolves successfully; the only client-visible outcome besides
success is the by-design :class:`~repro.errors.QueueFullError` shed at
admission during the bursts.

The final server stats are written to ``$CHAOS_STATS_JSON`` (CI uploads
them as an artifact) so a soak run leaves an inspectable record of how
much chaos it actually absorbed. Seed via ``$CHAOS_SEED``.

Marked ``mp`` and ``slow``: tier-1 excludes it, the CI mp job runs it.
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time

import numpy as np
import pytest

from repro.errors import QueueFullError, ServingError
from repro.nn import BlockCirculantDense, ReLU, Sequential
from repro.serving import BatchGate, MPInferenceServer, RetryPolicy

pytestmark = [pytest.mark.mp, pytest.mark.slow]

SOAK_S = 5.0
WEDGE_TIMEOUT_S = 0.5


def _fc_net(seed: int = 0) -> Sequential:
    net = Sequential(
        BlockCirculantDense(32, 32, 8, seed=seed),
        ReLU(),
        BlockCirculantDense(32, 16, 4, seed=seed + 1),
    )
    net.compile_inference()
    return net


class TestChaosSoak:
    def test_soak_with_retries_has_zero_client_visible_errors(
        self, tmp_path
    ):
        import multiprocessing

        seed = int(os.environ.get("CHAOS_SEED", "1234"))
        rng = random.Random(seed)
        net = _fc_net()
        gate = BatchGate(multiprocessing.get_context("spawn"))
        server = MPInferenceServer(
            net, workers=2, max_batch=4, max_wait_ms=1.0, queue_depth=16,
            batch_gate=gate, wedge_timeout_s=WEDGE_TIMEOUT_S,
            retry=RetryPolicy(max_attempts=6, backoff_ms=10.0, jitter=0.5,
                              seed=seed),
        )
        server.start()
        x = np.random.default_rng(7).normal(size=32)
        expected = net.inference_forward(x[None])[0]
        server.infer(x, timeout=120.0)  # warm both spawn paths
        server.infer(x, timeout=120.0)

        outcomes = {"ok": 0, "shed": 0}
        unexpected: list[BaseException] = []
        burst_futures = []
        lock = threading.Lock()
        halt = threading.Event()

        def client():
            while not halt.is_set():
                try:
                    response = server.infer(x, timeout=60.0)
                except QueueFullError:
                    with lock:
                        outcomes["shed"] += 1
                    time.sleep(0.002)
                    continue
                except BaseException as exc:  # noqa: BLE001 - tallied
                    with lock:
                        unexpected.append(exc)
                    continue
                if np.allclose(response, expected, rtol=1e-9, atol=1e-9):
                    with lock:
                        outcomes["ok"] += 1
                else:
                    with lock:
                        unexpected.append(
                            AssertionError("response diverged from model")
                        )

        def inject_kill():
            with server._lock:
                pids = [
                    w.process.pid for w in server._workers if w.alive
                ]
            if pids:
                os.kill(rng.choice(pids), signal.SIGKILL)

        def inject_wedge():
            gate.reset()
            gate.arm()
            # The watchdog kills the parked worker; entered.wait bounds
            # the cycle so a quiet instant cannot stall the schedule.
            gate.entered.wait(2.0)

        def inject_burst():
            futures = []
            for _ in range(40):
                try:
                    futures.append(server.submit(x))
                except QueueFullError:
                    with lock:
                        outcomes["shed"] += 1
                except ServingError as exc:
                    with lock:
                        unexpected.append(exc)
            with lock:
                burst_futures.extend(futures)

        events = {"kill": inject_kill, "wedge": inject_wedge,
                  "burst": inject_burst}
        injected = {name: 0 for name in events}

        clients = [threading.Thread(target=client) for _ in range(3)]
        for thread in clients:
            thread.start()
        soak_ends = time.monotonic() + SOAK_S
        try:
            while time.monotonic() < soak_ends:
                name = rng.choice(sorted(events))
                events[name]()
                injected[name] += 1
                time.sleep(0.7)
        finally:
            halt.set()
            for thread in clients:
                thread.join(timeout=120.0)
            gate.open()
        for thread in clients:
            assert not thread.is_alive(), "client thread hung in the soak"
        # Every admitted burst request resolves successfully too: a
        # retryable fault mid-burst becomes latency, never an error.
        for future in burst_futures:
            try:
                future.result(120.0)
                with lock:
                    outcomes["ok"] += 1
            except BaseException as exc:  # noqa: BLE001 - tallied
                unexpected.append(exc)
        stats = server.stats()
        server.stop(drain_timeout_s=30.0)

        record = {
            "seed": seed,
            "soak_s": SOAK_S,
            "injected": injected,
            "outcomes": outcomes,
            "unexpected_errors": [repr(e) for e in unexpected],
            "server_stats": stats,
        }
        out_path = os.environ.get(
            "CHAOS_STATS_JSON", str(tmp_path / "chaos_stats.json")
        )
        with open(out_path, "w") as fh:
            json.dump(record, fh, indent=2, default=float)

        assert unexpected == [], (
            f"client-visible errors during the soak: {unexpected!r} "
            f"(stats: {stats})"
        )
        assert outcomes["ok"] > 0
        # The soak actually exercised the machinery it claims to cover.
        assert sum(injected.values()) >= 3
        assert stats["crashes"] + stats["wedged"] >= 1
        assert stats["respawns"] >= 1
        if injected["burst"]:
            assert outcomes["shed"] > 0
        if stats["crashes"] + stats["wedged"] > 0:
            assert stats["retries"] >= 1
