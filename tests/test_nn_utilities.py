"""Tests for gradcheck, serialization, schedules and quantised inference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn import (
    Adam,
    BlockCirculantDense,
    Dense,
    EarlyStopping,
    ReLU,
    SGD,
    Sequential,
    StepDecay,
    Trainer,
    check_module,
    load_parameters,
    parameters_nbytes,
    save_parameters,
)
from repro.quant import (
    ActivationQuantizer,
    accuracy_vs_bits,
    network_accuracy,
    quantize_network_weights,
    quantized_view,
)


class TestGradCheck:
    def test_correct_layer_passes(self, rng):
        report = check_module(
            BlockCirculantDense(8, 6, 4, seed=0), rng.normal(size=(2, 8))
        )
        assert report.ok, report.describe()

    def test_broken_layer_fails(self, rng):
        class BrokenDense(Dense):
            def backward(self, grad_output):
                grad = super().backward(grad_output)
                self.weight.grad *= 2.0  # deliberately wrong
                return grad

        report = check_module(BrokenDense(6, 4, seed=0), rng.normal(size=(2, 6)))
        assert not report.ok
        assert "FAILED" in report.describe()

    def test_report_lists_parameters(self, rng):
        report = check_module(Dense(5, 3, seed=0), rng.normal(size=(2, 5)))
        assert set(report.parameter_errors) == {"weight", "bias"}


class TestSerialization:
    def test_roundtrip(self, rng, tmp_path):
        net = Sequential(
            BlockCirculantDense(16, 8, 4, seed=0), ReLU(),
            Dense(8, 3, seed=1),
        )
        x = rng.normal(size=(4, 16))
        expected = net(x)
        path = tmp_path / "weights.npz"
        count = save_parameters(net, path)
        assert count == 4  # two weights + two biases

        fresh = Sequential(
            BlockCirculantDense(16, 8, 4, seed=99), ReLU(),
            Dense(8, 3, seed=98),
        )
        assert not np.allclose(fresh(x), expected)
        load_parameters(fresh, path)
        np.testing.assert_allclose(fresh(x), expected)

    def test_shape_mismatch_rejected(self, tmp_path):
        net = Sequential(Dense(8, 4, seed=0))
        path = tmp_path / "weights.npz"
        save_parameters(net, path)
        wrong = Sequential(Dense(8, 5, seed=0))
        with pytest.raises(ShapeError):
            load_parameters(wrong, path)

    def test_name_mismatch_rejected(self, tmp_path):
        net = Sequential(Dense(8, 4, seed=0))
        path = tmp_path / "weights.npz"
        save_parameters(net, path)
        wrong = Sequential(Dense(8, 4, seed=0), Dense(4, 2, seed=1))
        with pytest.raises(ShapeError):
            load_parameters(wrong, path)

    def test_compressed_file_is_smaller(self):
        dense = Sequential(Dense(256, 256, seed=0))
        compressed = Sequential(BlockCirculantDense(256, 256, 64, seed=0))
        assert parameters_nbytes(compressed, 16) < parameters_nbytes(dense, 16) / 30


class TestSchedules:
    def test_step_decay_halves(self):
        net = Sequential(Dense(4, 2, seed=0))
        optimizer = SGD(net.parameters(), lr=0.4)
        decay = StepDecay(every_epochs=2, factor=0.5)
        rates = [decay.apply(optimizer, epoch) for epoch in (1, 2, 3, 4)]
        assert rates == [0.4, 0.2, 0.2, 0.1]

    def test_step_decay_floor(self):
        net = Sequential(Dense(4, 2, seed=0))
        optimizer = SGD(net.parameters(), lr=1e-5)
        decay = StepDecay(every_epochs=1, factor=0.1, min_lr=1e-6)
        for epoch in range(1, 6):
            decay.apply(optimizer, epoch)
        assert optimizer.lr == pytest.approx(1e-6)

    def test_early_stopping_triggers(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(0.5)
        assert not stopper.update(0.6)   # improvement
        assert not stopper.update(0.6)   # stale 1
        assert stopper.update(0.6)       # stale 2 -> stop
        assert stopper.best == pytest.approx(0.6)

    def test_trainer_integration(self, rng):
        centers = rng.normal(scale=2.0, size=(2, 6))
        labels = rng.integers(0, 2, size=80)
        data = centers[labels] + rng.normal(scale=0.3, size=(80, 6))
        net = Sequential(Dense(6, 8, seed=0), ReLU(), Dense(8, 2, seed=1))
        trainer = Trainer(net, Adam(net.parameters(), lr=0.01), seed=0)
        history = trainer.fit(
            data, labels, epochs=30, x_val=data, y_val=labels,
            schedule=StepDecay(every_epochs=5),
            early_stopping=EarlyStopping(patience=3),
        )
        # Early stopping must cut the run well short of 30 epochs on a
        # problem this easy.
        assert len(history.train_loss) < 30

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            StepDecay(every_epochs=0)
        with pytest.raises(ConfigurationError):
            StepDecay(every_epochs=1, factor=0.0)
        with pytest.raises(ConfigurationError):
            EarlyStopping(patience=0)


class TestQuantizedInference:
    def _trained_net(self, rng):
        centers = rng.normal(scale=2.0, size=(3, 12))
        labels = rng.integers(0, 3, size=150)
        data = centers[labels] + rng.normal(scale=0.4, size=(150, 12))
        net = Sequential(
            BlockCirculantDense(12, 16, 4, seed=0), ReLU(),
            Dense(16, 3, seed=1),
        )
        trainer = Trainer(net, Adam(net.parameters(), lr=0.01), seed=0)
        trainer.fit(data, labels, epochs=15)
        return net, data, labels

    def test_quantize_in_place(self, rng):
        net, _, _ = self._trained_net(rng)
        quantize_network_weights(net, 8)
        for param in net.parameters():
            # Everything sits on some power-of-two grid now.
            assert np.allclose(param.value, np.float64(param.value))

    def test_quantized_view_leaves_original_untouched(self, rng):
        net, data, _ = self._trained_net(rng)
        before = net(data[:4]).copy()
        quantized_view(net, 4, 4)
        np.testing.assert_array_equal(net(data[:4]), before)

    def test_16bit_preserves_accuracy(self, rng):
        net, data, labels = self._trained_net(rng)
        baseline = network_accuracy(net, data, labels)
        view = quantized_view(net, 16, 16)
        assert abs(network_accuracy(view, data, labels) - baseline) <= 0.02

    def test_accuracy_vs_bits_is_roughly_monotone(self, rng):
        # The Fig 15 caveat: accuracy collapses at very low precision.
        net, data, labels = self._trained_net(rng)
        curve = accuracy_vs_bits(net, data, labels, bit_widths=(16, 8, 3, 2))
        assert curve[16] >= curve[2]
        assert curve[16] > 0.9

    def test_activation_quantizer_passthrough_backward(self, rng):
        layer = ActivationQuantizer(8)
        x = rng.normal(size=(3, 4))
        layer.forward(x)
        grad = rng.normal(size=(3, 4))
        np.testing.assert_array_equal(layer.backward(grad), grad)
