"""Tests for the control subsystem (instruction compiler + engine)."""

from __future__ import annotations

import pytest

from repro.arch import Engine, compile_program, map_model
from repro.arch.controller import (
    ConfigureFFT,
    ControlProgram,
    MoveData,
    RunFFTBatch,
    RunPeripheral,
    layer_work_from_program,
)
from repro.arch.platforms import fpga_cyclone_v
from repro.errors import ConfigurationError
from repro.models import (
    CompressionPlan,
    alexnet_spec,
    default_alexnet_full_plan,
    default_lenet5_plan,
    lenet5_spec,
    mnist_mlp_spec,
    default_fig14_plans,
)


class TestCompilation:
    def test_every_layer_emits_instructions(self):
        spec = lenet5_spec()
        program = compile_program(spec, default_lenet5_plan())
        for layer in spec.layers:
            assert program.for_layer(layer.name), layer.name

    def test_fft_layers_configure_before_running(self):
        program = compile_program(
            mnist_mlp_spec(), default_fig14_plans()["mnist_mlp"]
        )
        seen_sizes: dict[str, int] = {}
        for instruction in program.instructions:
            if isinstance(instruction, ConfigureFFT):
                seen_sizes[instruction.layer] = instruction.fft_size
            if isinstance(instruction, RunFFTBatch):
                assert seen_sizes.get(instruction.layer) == instruction.fft_size

    def test_uncompressed_layer_has_no_fft_instructions(self):
        spec = lenet5_spec()
        program = compile_program(spec, CompressionPlan())
        assert not any(
            isinstance(i, (ConfigureFFT, RunFFTBatch))
            for i in program.instructions
        )

    def test_fft_sizes_reported(self):
        program = compile_program(
            alexnet_spec(), default_alexnet_full_plan()
        )
        sizes = program.fft_sizes()
        assert sizes and all(s & (s - 1) == 0 for s in sizes)

    def test_work_summary_matches_model_work(self):
        from repro.analysis.complexity import model_work

        spec = lenet5_spec()
        plan = default_lenet5_plan()
        program = compile_program(spec, plan)
        for work in model_work(spec, plan):
            summary = layer_work_from_program(program, work.name)
            assert summary["cmult"] == work.cmult
            assert summary["scalar"] == work.scalar_ops
            if work.fft_size > 1:
                assert summary["fft"] == work.num_fft

    def test_listing_is_readable(self):
        program = compile_program(lenet5_spec(), default_lenet5_plan())
        listing = program.listing()
        assert "RunFFTBatch" in listing and "MoveData" in listing


class TestEngineExecution:
    def test_trace_totals_positive(self):
        platform = fpga_cyclone_v()
        program = compile_program(
            alexnet_spec(), default_alexnet_full_plan()
        )
        trace = Engine(platform).execute(program, model_weight_bytes=4e5)
        assert trace.fft_cycles > 0
        assert trace.peripheral_cycles > 0
        assert trace.total_energy_j > 0
        assert trace.reconfigurations >= 1

    def test_engine_agrees_with_mapper(self):
        """The instruction stream is the same execution the mapper costs:
        per-engine cycle totals and dynamic energy must match."""
        spec = alexnet_spec()
        plan = default_alexnet_full_plan()
        platform = fpga_cyclone_v()
        report = map_model(spec, plan, platform)
        trace = Engine(platform).execute(
            program=compile_program(spec, plan),
            model_weight_bytes=report.model_weight_bytes,
        )
        assert trace.fft_cycles == sum(l.fft_cycles for l in report.layers)
        assert trace.peripheral_cycles == sum(
            l.peripheral_cycles for l in report.layers
        )
        assert trace.total_energy_j == pytest.approx(
            report.dynamic_energy_j, rel=1e-9
        )

    def test_reconfiguration_counting(self):
        # Same FFT size in consecutive layers -> one reconfiguration.
        program = ControlProgram(
            "toy",
            (
                ConfigureFFT("a", 64), RunFFTBatch("a", 64, 4),
                ConfigureFFT("b", 64), RunFFTBatch("b", 64, 4),
                ConfigureFFT("c", 128), RunFFTBatch("c", 128, 4),
            ),
        )
        trace = Engine(fpga_cyclone_v()).execute(program)
        assert trace.reconfigurations == 2

    def test_misconfigured_batch_rejected(self):
        program = ControlProgram(
            "broken", (RunFFTBatch("layer", 64, 4),)
        )
        with pytest.raises(ConfigurationError):
            Engine(fpga_cyclone_v()).execute(program)

    def test_one_engine_runs_many_networks(self):
        # §5.4 reconfigurability: the same engine object executes
        # different networks back to back.
        engine = Engine(fpga_cyclone_v())
        plans = default_fig14_plans()
        first = engine.execute(
            compile_program(mnist_mlp_spec(), plans["mnist_mlp"])
        )
        second = engine.execute(
            compile_program(lenet5_spec(), default_lenet5_plan())
        )
        assert first.fft_cycles != second.fft_cycles


class TestInstructionTypes:
    def test_move_data_is_plain_record(self):
        move = MoveData("fc", 100, 200)
        assert move.weight_words == 100

    def test_run_peripheral_record(self):
        run = RunPeripheral("fc", 1, 2, 3)
        assert (run.cmult, run.cadd, run.scalar_ops) == (1, 2, 3)
