"""Tests for synthetic datasets, model specs and builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    cifar10_like,
    dataset_spec,
    imagenet_spec,
    make_classification_images,
    mnist_like,
    svhn_like,
)
from repro.errors import ConfigurationError
from repro.models import (
    CompressionPlan,
    alexnet_mini_spec,
    alexnet_spec,
    build_alexnet_mini,
    build_lenet5,
    build_mlp,
    cifar10_convnet_spec,
    default_fig14_plans,
    default_lenet5_plan,
    lenet5_caffe_spec,
    lenet5_spec,
    mnist_mlp_spec,
    svhn_convnet_spec,
)
from repro.models.descriptors import ConvSpec, DenseSpec, PoolSpec
from repro.nn import BlockCirculantConv2D, BlockCirculantDense


class TestDatasets:
    def test_shapes(self):
        ds = mnist_like(32, 16, seed=0)
        assert ds.x_train.shape == (32, 1, 28, 28)
        assert ds.x_test.shape == (16, 1, 28, 28)
        assert ds.y_train.shape == (32,)
        assert set(np.unique(ds.y_train)) <= set(range(10))

    def test_reproducible(self):
        a = cifar10_like(16, 8, seed=7)
        b = cifar10_like(16, 8, seed=7)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_test, b.y_test)

    def test_different_seeds_differ(self):
        a = svhn_like(16, 8, seed=1)
        b = svhn_like(16, 8, seed=2)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_flattened_view(self):
        ds = mnist_like(8, 4, seed=0).flattened()
        assert ds.x_train.shape == (8, 784)

    def test_classes_are_separable_at_low_noise(self):
        ds = make_classification_images(
            dataset_spec("mnist"), 64, 32, noise=0.1, seed=0
        )
        # Nearest-class-mean classification should be near perfect.
        flat = ds.x_train.reshape(64, -1)
        means = np.stack([
            flat[ds.y_train == c].mean(axis=0) for c in range(10)
            if np.any(ds.y_train == c)
        ])
        present = [c for c in range(10) if np.any(ds.y_train == c)]
        test_flat = ds.x_test.reshape(32, -1)
        distances = ((test_flat[:, None] - means[None]) ** 2).sum(axis=2)
        predicted = np.array(present)[np.argmin(distances, axis=1)]
        assert float(np.mean(predicted == ds.y_test)) > 0.9

    def test_spec_lookup(self):
        assert dataset_spec("imagenet").num_classes == 1000
        assert imagenet_spec().image_shape == (3, 224, 224)
        with pytest.raises(ConfigurationError):
            dataset_spec("fashion")

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            make_classification_images(dataset_spec("mnist"), 0, 4)


class TestLayerSpecs:
    def test_conv_spec_geometry(self):
        conv = ConvSpec("c", 3, 96, 11, in_hw=(227, 227), stride=4)
        assert conv.out_hw == (55, 55)
        assert conv.positions == 3025
        assert conv.dense_params == 96 * 3 * 121
        assert conv.macs == 3025 * conv.dense_params

    def test_dense_spec(self):
        fc = DenseSpec("f", 9216, 4096)
        assert fc.dense_params == fc.macs == 9216 * 4096

    def test_pool_spec(self):
        pool = PoolSpec("p", 96, 3, in_hw=(55, 55), stride=2)
        assert pool.out_hw == (27, 27)
        assert pool.dense_params == 0
        assert pool.comparisons == 96 * 27 * 27 * 8

    def test_model_lookup(self):
        spec = alexnet_spec()
        assert spec.layer("fc6").in_features == 9216
        with pytest.raises(ConfigurationError):
            spec.layer("fc99")


class TestPaperShapeFacts:
    """The shape arithmetic the paper's storage claims rest on."""

    def test_alexnet_parameter_split(self):
        spec = alexnet_spec()
        assert spec.total_dense_params == pytest.approx(62.4e6, rel=0.01)
        assert spec.fc_dense_params == 58_621_952
        # FC layers hold ~94% of the weights (the §2.1 premise).
        assert spec.fc_dense_params / spec.total_dense_params > 0.9

    def test_alexnet_macs_are_conv_dominated(self):
        spec = alexnet_spec()
        conv_macs = sum(l.macs for l in spec.conv_layers)
        assert conv_macs / spec.total_macs > 0.9

    def test_lenet5_fc_dominates_storage(self):
        spec = lenet5_spec()
        assert spec.fc_dense_params / spec.total_dense_params > 0.9

    def test_lenet5_caffe_is_the_compression_benchmark(self):
        spec = lenet5_caffe_spec()
        assert spec.layer("fc1").dense_params == 400_000
        assert spec.total_dense_params == 430_500


class TestCompressionPlan:
    def test_divisible_fc_compression(self):
        plan = CompressionPlan(block_sizes={"fc": 64})
        layer = DenseSpec("fc", 1024, 512)
        assert plan.compressed_params(layer) == 1024 * 512 // 64

    def test_padded_fc_compression(self):
        plan = CompressionPlan(block_sizes={"fc": 512})
        layer = DenseSpec("fc", 4096, 1000)  # 1000 pads to 2 block rows
        assert plan.compressed_params(layer) == 2 * 8 * 512

    def test_conv_compression(self):
        plan = CompressionPlan(block_sizes={"conv": 16})
        layer = ConvSpec("conv", 64, 128, 3, in_hw=(14, 14))
        assert plan.compressed_params(layer) == 9 * 8 * 4 * 16

    def test_unlisted_layer_uncompressed(self):
        plan = CompressionPlan(block_sizes={})
        layer = DenseSpec("fc", 100, 50)
        assert plan.compressed_params(layer) == 5000

    def test_invalid_block_size(self):
        plan = CompressionPlan(block_sizes={"fc": 0})
        with pytest.raises(ConfigurationError):
            plan.block_size(DenseSpec("fc", 8, 8))


class TestBuilders:
    def test_lenet_dense_parameter_count(self):
        net = build_lenet5(None, seed=0)
        spec = lenet5_spec()
        biases = 6 + 16 + 120 + 84 + 10
        assert net.num_parameters() == spec.total_dense_params + biases

    def test_lenet_compressed_is_smaller(self):
        dense = build_lenet5(None, seed=0)
        compressed = build_lenet5(default_lenet5_plan(), seed=0)
        assert compressed.num_parameters() < dense.num_parameters() / 5

    def test_lenet_forward_shapes(self, rng):
        for plan in (None, default_lenet5_plan()):
            net = build_lenet5(plan, seed=0)
            out = net(rng.normal(size=(2, 1, 28, 28)))
            assert out.shape == (2, 10)

    def test_alexnet_mini_builder(self, rng):
        plan = CompressionPlan(block_sizes={"conv2": 4, "fc1": 64, "fc2": 8})
        net = build_alexnet_mini(plan, seed=0)
        out = net(rng.normal(size=(2, 3, 32, 32)))
        assert out.shape == (2, 10)
        kinds = [type(l).__name__ for l in net.layers]
        assert "BlockCirculantConv2D" in kinds
        assert "BlockCirculantDense" in kinds

    def test_alexnet_mini_spec_matches_builder(self):
        spec = alexnet_mini_spec()
        net = build_alexnet_mini(None, seed=0)
        weights = sum(
            p.size for layer in net.layers
            for name, p in layer.named_parameters() if name == "weight"
        )
        assert weights == spec.total_dense_params

    def test_mlp_builder_block_sizes(self):
        net = build_mlp(64, [32, 32], 10, block_size=8, seed=0)
        assert isinstance(net.layers[0], BlockCirculantDense)
        dense_net = build_mlp(64, [32], 10, seed=0)
        assert type(dense_net.layers[0]).__name__ == "Dense"

    def test_fig14_plans_cover_their_models(self):
        plans = default_fig14_plans()
        for spec in (mnist_mlp_spec(), cifar10_convnet_spec(),
                     svhn_convnet_spec()):
            plan = plans[spec.name]
            assert plan.total_compressed_params(spec) < spec.total_dense_params
