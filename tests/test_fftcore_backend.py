"""Tests for the pluggable FFT backend registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BackendError
from repro.fftcore import (
    available_backends,
    get_backend,
    set_default_backend,
)


class TestRegistry:
    def test_available(self):
        assert set(available_backends()) == {"numpy", "radix2"}

    def test_lookup_by_name(self):
        assert get_backend("numpy").name == "numpy"
        assert get_backend("radix2").name == "radix2"

    def test_unknown_backend(self):
        with pytest.raises(BackendError):
            get_backend("fftw")

    def test_backend_object_passthrough(self):
        backend = get_backend("radix2")
        assert get_backend(backend) is backend

    def test_default_backend_switch(self):
        try:
            set_default_backend("radix2")
            assert get_backend(None).name == "radix2"
        finally:
            set_default_backend("numpy")
        assert get_backend(None).name == "numpy"

    def test_set_unknown_default(self):
        with pytest.raises(BackendError):
            set_default_backend("cufft")


class TestBackendAgreement:
    """The two backends must be numerically interchangeable."""

    @pytest.mark.parametrize("n", [2, 16, 128])
    def test_fft_agreement(self, rng, n):
        x = rng.normal(size=(3, n)) + 1j * rng.normal(size=(3, n))
        np.testing.assert_allclose(
            get_backend("radix2").fft(x), get_backend("numpy").fft(x),
            atol=1e-9,
        )

    @pytest.mark.parametrize("n", [2, 16, 128])
    def test_ifft_agreement(self, rng, n):
        x = rng.normal(size=(3, n)) + 1j * rng.normal(size=(3, n))
        np.testing.assert_allclose(
            get_backend("radix2").ifft(x), get_backend("numpy").ifft(x),
            atol=1e-9,
        )

    @pytest.mark.parametrize("n", [2, 16, 128])
    def test_rfft_agreement(self, rng, n):
        x = rng.normal(size=(4, n))
        np.testing.assert_allclose(
            get_backend("radix2").rfft(x), get_backend("numpy").rfft(x),
            atol=1e-9,
        )

    @pytest.mark.parametrize("n", [2, 16, 128])
    def test_irfft_agreement(self, rng, n):
        spectrum = np.fft.rfft(rng.normal(size=(4, n)), axis=-1)
        np.testing.assert_allclose(
            get_backend("radix2").irfft(spectrum, n),
            get_backend("numpy").irfft(spectrum, n),
            atol=1e-9,
        )
