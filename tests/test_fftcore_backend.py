"""Tests for the pluggable FFT backend registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BackendError
from repro.fftcore import (
    CountingFFTBackend,
    available_backends,
    clear_plan_caches,
    get_backend,
    register_backend,
    set_default_backend,
    unregister_backend,
)
from repro.fftcore.backend import FFTBackend, NumpyFFTBackend


class TestRegistry:
    def test_available(self):
        assert set(available_backends()) == {"numpy", "radix2"}

    def test_lookup_by_name(self):
        assert get_backend("numpy").name == "numpy"
        assert get_backend("radix2").name == "radix2"

    def test_unknown_backend(self):
        with pytest.raises(BackendError):
            get_backend("fftw")

    def test_backend_object_passthrough(self):
        backend = get_backend("radix2")
        assert get_backend(backend) is backend

    def test_default_backend_switch(self):
        try:
            set_default_backend("radix2")
            assert get_backend(None).name == "radix2"
        finally:
            set_default_backend("numpy")
        assert get_backend(None).name == "numpy"

    def test_set_unknown_default(self):
        with pytest.raises(BackendError):
            set_default_backend("cufft")


class _CustomBackend(NumpyFFTBackend):
    name = "custom-test"


class TestRegisterBackend:
    def test_register_resolves_by_name(self):
        backend = _CustomBackend()
        register_backend(backend)
        try:
            assert get_backend("custom-test") is backend
            assert "custom-test" in available_backends()
        finally:
            unregister_backend("custom-test")
        assert "custom-test" not in available_backends()

    def test_register_rejects_non_backend(self):
        with pytest.raises(BackendError):
            register_backend(object())

    def test_register_rejects_abstract_name(self):
        with pytest.raises(BackendError):
            register_backend(FFTBackend())

    def test_collision_needs_replace(self):
        backend = _CustomBackend()
        register_backend(backend)
        try:
            with pytest.raises(BackendError):
                register_backend(_CustomBackend())
            replacement = register_backend(_CustomBackend(), replace=True)
            assert get_backend("custom-test") is replacement
        finally:
            unregister_backend("custom-test")

    def test_builtins_cannot_be_unregistered(self):
        with pytest.raises(BackendError):
            unregister_backend("numpy")
        with pytest.raises(BackendError):
            unregister_backend("radix2")

    def test_unregister_unknown(self):
        with pytest.raises(BackendError):
            unregister_backend("no-such-backend")

    def test_set_default_accepts_instance(self):
        backend = _CustomBackend()
        try:
            set_default_backend(backend)  # auto-registers the instance
            assert get_backend(None) is backend
        finally:
            set_default_backend("numpy")
            unregister_backend("custom-test")

    def test_set_default_rejects_shadowing_instance(self):
        register_backend(_CustomBackend())
        try:
            with pytest.raises(BackendError):
                set_default_backend(_CustomBackend())
        finally:
            unregister_backend("custom-test")

    def test_unregister_default_falls_back_to_numpy(self):
        set_default_backend(_CustomBackend())
        try:
            assert get_backend(None).name == "custom-test"
        finally:
            unregister_backend("custom-test")
        assert get_backend(None).name == "numpy"

    def test_registered_backend_usable_in_layers(self):
        from repro.nn import BlockCirculantDense

        register_backend(_CustomBackend())
        try:
            layer = BlockCirculantDense(
                16, 8, block_size=4, seed=0, backend="custom-test"
            )
            x = np.ones((2, 16))
            np.testing.assert_allclose(
                layer.inference_forward(x),
                BlockCirculantDense(
                    16, 8, block_size=4, seed=0, backend="numpy"
                ).inference_forward(x),
            )
        finally:
            unregister_backend("custom-test")


class TestClearPlans:
    def test_clear_plans_is_public_per_backend(self):
        backend = get_backend("radix2")
        backend.rfft(np.ones((2, 16)))
        assert backend.plan_cache_size() > 0
        backend.clear_plans()
        assert backend.plan_cache_size() == 0

    def test_clear_plan_caches_uses_clear_plans(self):
        class Recording(NumpyFFTBackend):
            name = "recording-test"
            cleared = False

            def clear_plans(self) -> None:
                self.cleared = True
                super().clear_plans()

        backend = register_backend(Recording())
        try:
            clear_plan_caches()
            assert backend.cleared
        finally:
            unregister_backend("recording-test")

    def test_counting_backend_clear_plans(self):
        backend = CountingFFTBackend("radix2")
        backend.rfft(np.ones((2, 8)))
        backend.clear_plans()
        assert backend.plan_cache_size() == 0


class TestBackendAgreement:
    """The two backends must be numerically interchangeable."""

    @pytest.mark.parametrize("n", [2, 16, 128])
    def test_fft_agreement(self, rng, n):
        x = rng.normal(size=(3, n)) + 1j * rng.normal(size=(3, n))
        np.testing.assert_allclose(
            get_backend("radix2").fft(x), get_backend("numpy").fft(x),
            atol=1e-9,
        )

    @pytest.mark.parametrize("n", [2, 16, 128])
    def test_ifft_agreement(self, rng, n):
        x = rng.normal(size=(3, n)) + 1j * rng.normal(size=(3, n))
        np.testing.assert_allclose(
            get_backend("radix2").ifft(x), get_backend("numpy").ifft(x),
            atol=1e-9,
        )

    @pytest.mark.parametrize("n", [2, 16, 128])
    def test_rfft_agreement(self, rng, n):
        x = rng.normal(size=(4, n))
        np.testing.assert_allclose(
            get_backend("radix2").rfft(x), get_backend("numpy").rfft(x),
            atol=1e-9,
        )

    @pytest.mark.parametrize("n", [2, 16, 128])
    def test_irfft_agreement(self, rng, n):
        spectrum = np.fft.rfft(rng.normal(size=(4, n)), axis=-1)
        np.testing.assert_allclose(
            get_backend("radix2").irfft(spectrum, n),
            get_backend("numpy").irfft(spectrum, n),
            atol=1e-9,
        )
