"""Block-circulant recurrent layers (repro.nn.recurrent).

Covers the time-stepped forward contract end to end at the layer level:
dense-reference parity, the reentrant inference path, per-step streaming
via ``step``, state threading through ``Sequential``, the exact
per-sequence FFT budget (asserted with ``CountingFFTBackend``), and the
BPTT backward against finite differences through the extended
``check_module``. Store/plan round-trips live in
``tests/test_store_recurrent.py``; serving in
``tests/test_serving_sequences.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.fftcore import CountingFFTBackend, get_backend
from repro.nn import (
    BlockCirculantGRU,
    BlockCirculantLSTM,
    ReLU,
    Sequential,
    StatefulModule,
)
from repro.nn.gradcheck import check_module


def _sigmoid(a: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-a))


def _dense_gates(layer) -> dict[str, np.ndarray | None]:
    dense: dict[str, np.ndarray | None] = {}
    for name, gate in layer.named_children():
        dense[name] = gate.to_dense_matrix()
        dense[name + "_bias"] = (
            None if gate.bias is None else gate.bias.value
        )
    return dense


def _gate(dense: dict, name: str, row: np.ndarray) -> np.ndarray:
    out = row @ dense[name].T
    bias = dense[name + "_bias"]
    return out if bias is None else out + bias


def _dense_lstm(layer, x, h, c):
    dense = _dense_gates(layer)
    ys = np.empty((x.shape[0], x.shape[1], layer.hidden_size))
    for t in range(x.shape[1]):
        xt = x[:, t]
        i = _sigmoid(_gate(dense, "xi", xt) + _gate(dense, "hi", h))
        f = _sigmoid(_gate(dense, "xf", xt) + _gate(dense, "hf", h))
        g = np.tanh(_gate(dense, "xg", xt) + _gate(dense, "hg", h))
        o = _sigmoid(_gate(dense, "xo", xt) + _gate(dense, "ho", h))
        c = f * c + i * g
        h = o * np.tanh(c)
        ys[:, t] = h
    return ys, (h, c)


def _dense_gru(layer, x, h):
    dense = _dense_gates(layer)
    ys = np.empty((x.shape[0], x.shape[1], layer.hidden_size))
    for t in range(x.shape[1]):
        xt = x[:, t]
        r = _sigmoid(_gate(dense, "xr", xt) + _gate(dense, "hr", h))
        z = _sigmoid(_gate(dense, "xz", xt) + _gate(dense, "hz", h))
        n = np.tanh(_gate(dense, "xn", xt) + r * _gate(dense, "hn", h))
        h = (1.0 - z) * n + z * h
        ys[:, t] = h
    return ys, h


# -- forward parity -----------------------------------------------------------

def test_lstm_forward_matches_dense_reference():
    rng = np.random.default_rng(0)
    layer = BlockCirculantLSTM(10, 8, 4, seed=1)
    x = rng.normal(size=(3, 5, 10))
    expected, (h_ref, c_ref) = _dense_lstm(
        layer, x, np.zeros((3, 8)), np.zeros((3, 8))
    )
    y, (h, c) = layer.forward_with_state(x, layer.init_state(3))
    np.testing.assert_allclose(y, expected, atol=1e-12, rtol=0)
    np.testing.assert_allclose(h, h_ref, atol=1e-12, rtol=0)
    np.testing.assert_allclose(c, c_ref, atol=1e-12, rtol=0)


def test_gru_forward_matches_dense_reference():
    rng = np.random.default_rng(1)
    layer = BlockCirculantGRU(9, 6, 3, seed=2)
    x = rng.normal(size=(2, 4, 9))
    expected, h_ref = _dense_gru(layer, x, np.zeros((2, 6)))
    y, h = layer.forward_with_state(x, layer.init_state(2))
    np.testing.assert_allclose(y, expected, atol=1e-12, rtol=0)
    np.testing.assert_allclose(h, h_ref, atol=1e-12, rtol=0)


def test_inference_forward_is_bit_identical_to_forward():
    # The reentrant inference path and the recording path must compute
    # the very same numbers — they share the projection kernels.
    rng = np.random.default_rng(2)
    for layer in (
        BlockCirculantLSTM(10, 8, 4, seed=3),
        BlockCirculantGRU(10, 8, 4, seed=4),
    ):
        x = rng.normal(size=(3, 6, 10))
        recorded = layer.forward(x)
        layer.eval()
        assert np.array_equal(layer.inference_forward(x), recorded)


def test_no_bias_mode_drops_input_gate_biases():
    layer = BlockCirculantLSTM(8, 8, 4, bias=False, seed=5)
    assert all(
        gate.bias is None for _, gate in layer.named_children()
    )
    names = [name for name, _ in layer.named_parameters()]
    assert all(name.endswith(".weight") for name in names)


def test_hidden_gates_never_carry_bias():
    layer = BlockCirculantLSTM(8, 8, 4, bias=True, seed=5)
    for name, gate in layer.named_children():
        if name in layer.H_GATES:
            assert gate.bias is None
        else:
            assert gate.bias is not None


def test_sequence_shape_validation():
    layer = BlockCirculantLSTM(8, 8, 4, seed=6)
    with pytest.raises(ShapeError):
        layer.forward(np.zeros((3, 8)))          # missing time axis
    with pytest.raises(ShapeError):
        layer.forward(np.zeros((3, 0, 8)))       # empty sequence
    with pytest.raises(ShapeError):
        layer.forward(np.zeros((3, 4, 7)))       # wrong feature width


# -- streaming and state threading -------------------------------------------

def test_step_streams_the_same_outputs_as_the_sequence_forward():
    rng = np.random.default_rng(3)
    for layer in (
        BlockCirculantLSTM(10, 8, 4, seed=7),
        BlockCirculantGRU(10, 8, 4, seed=8),
    ):
        layer.eval()
        x = rng.normal(size=(2, 5, 10))
        whole = layer.inference_forward(x)
        state = layer.init_state(2)
        for t in range(5):
            y_t, state = layer.step(x[:, t], state)
            np.testing.assert_allclose(
                y_t, whole[:, t], atol=1e-12, rtol=0
            )


def test_state_carries_across_split_sequences():
    # Serving a long stream in two chunks with the state carried over
    # must agree with one unbroken forward.
    rng = np.random.default_rng(4)
    layer = BlockCirculantGRU(10, 8, 4, seed=9)
    layer.eval()
    x = rng.normal(size=(3, 8, 10))
    whole, _ = layer.inference_forward_with_state(x, layer.init_state(3))
    first, state = layer.inference_forward_with_state(
        x[:, :3], layer.init_state(3)
    )
    second, _ = layer.inference_forward_with_state(x[:, 3:], state)
    np.testing.assert_allclose(
        np.concatenate([first, second], axis=1), whole,
        atol=1e-12, rtol=0,
    )


def test_sequential_threads_state_through_mixed_pipelines():
    rng = np.random.default_rng(5)
    net = Sequential(BlockCirculantLSTM(10, 8, 4, seed=10), ReLU())
    net.eval()
    x = rng.normal(size=(2, 5, 10))
    whole = net.inference_forward(x)
    state = net.init_state(2)
    for t in range(5):
        y_t, state = net.step(x[:, t], state)
        np.testing.assert_allclose(y_t, whole[:, t], atol=1e-12, rtol=0)
    assert net.stateful
    assert net.time_axis == 0


def test_serving_signature_reports_the_time_axis():
    net = Sequential(BlockCirculantGRU(10, 8, 4, seed=11))
    net.compile_inference()
    signature = net.serving_signature()
    assert signature["stateful"] is True
    assert signature["time_axis"] == 0
    assert net.input_sample_shape == (None, 10)

    dense_net = Sequential(BlockCirculantLSTM(10, 8, 4, seed=12))
    assert isinstance(dense_net.layers[0], StatefulModule)


def test_stateless_networks_report_no_time_axis():
    from repro.nn import BlockCirculantDense

    net = Sequential(BlockCirculantDense(16, 8, 4, seed=0), ReLU())
    assert net.stateful is False
    assert net.time_axis is None
    assert "stateful" in net.serving_signature()


# -- FFT economics ------------------------------------------------------------

def _counting_layer(cls, seed):
    counting = CountingFFTBackend(get_backend("numpy"))
    return cls(10, 8, 4, seed=seed, backend=counting), counting


def test_lstm_compiled_fft_budget_is_exact():
    rng = np.random.default_rng(6)
    layer, counting = _counting_layer(BlockCirculantLSTM, 13)
    net = Sequential(layer)
    net.compile_inference()
    # Compile transforms each of the 8 gate weights exactly once.
    assert counting.counts.get("rfft", 0) == 8
    for steps in (1, 4, 9):
        counting.reset()
        net.inference_forward(rng.normal(size=(3, steps, 10)))
        # 1 batched input FFT for all T steps + 1 hidden FFT per step;
        # 4 gate inverse transforms per step + 4 for the batched input
        # pre-activations. No weight FFTs, whatever T is.
        assert counting.counts.get("rfft", 0) == 1 + steps
        assert counting.counts.get("irfft", 0) == 4 + 4 * steps


def test_gru_compiled_fft_budget_is_exact():
    rng = np.random.default_rng(7)
    layer, counting = _counting_layer(BlockCirculantGRU, 14)
    net = Sequential(layer)
    net.compile_inference()
    assert counting.counts.get("rfft", 0) == 6
    for steps in (1, 5):
        counting.reset()
        net.inference_forward(rng.normal(size=(3, steps, 10)))
        assert counting.counts.get("rfft", 0) == 1 + steps
        assert counting.counts.get("irfft", 0) == 3 + 3 * steps


def test_uncompiled_forward_pays_weight_spectra_once_per_sequence():
    rng = np.random.default_rng(8)
    layer, counting = _counting_layer(BlockCirculantLSTM, 15)
    steps = 6
    counting.reset()
    layer.forward(rng.normal(size=(2, steps, 10)))
    # 8 weight spectra computed once for the whole sequence — not per
    # timestep — on top of the activation budget.
    assert counting.counts.get("rfft", 0) == 8 + 1 + steps


def test_bptt_backward_fft_budget_is_exact():
    rng = np.random.default_rng(9)
    layer, counting = _counting_layer(BlockCirculantLSTM, 16)
    steps = 5
    x = rng.normal(size=(2, steps, 10))
    y = layer.forward(x)
    counting.reset()
    layer.zero_grad()
    layer.backward(rng.normal(size=y.shape))
    # Per step: 4 pre-activation gradient spectra (shared between the x-
    # and h-gate weight gradients and the hidden/input chains) and one
    # inverse for the hidden chain; plus 8 weight-gradient inverses and
    # 1 input-gradient inverse at the end. Zero forward-spectrum
    # recomputation — everything is served from the tape.
    assert counting.counts.get("rfft", 0) == 4 * steps
    assert counting.counts.get("irfft", 0) == steps + 8 + 1


# -- training ----------------------------------------------------------------

def test_lstm_bptt_gradcheck():
    rng = np.random.default_rng(10)
    layer = BlockCirculantLSTM(6, 4, 2, seed=17)
    report = check_module(layer, rng.normal(size=(2, 3, 6)))
    assert report.input_grad_checked
    assert report.ok, report.describe()


def test_gru_bptt_gradcheck_inside_sequential():
    rng = np.random.default_rng(11)
    net = Sequential(BlockCirculantGRU(6, 4, 2, seed=18))
    report = check_module(net, rng.normal(size=(2, 3, 6)))
    assert report.ok, report.describe()


def test_gradcheck_skips_input_grad_when_disabled():
    rng = np.random.default_rng(12)
    layer = BlockCirculantLSTM(6, 4, 2, seed=19)
    layer.needs_input_grad = False
    report = check_module(layer, rng.normal(size=(2, 2, 6)))
    assert not report.input_grad_checked
    assert "skipped" in report.describe()
    assert report.ok, report.describe()


def test_training_sgd_reduces_sequence_loss():
    rng = np.random.default_rng(13)
    layer = BlockCirculantGRU(8, 8, 4, seed=20)
    x = rng.normal(size=(4, 5, 8))
    target = np.tanh(np.cumsum(x, axis=1) * 0.3)
    losses = []
    for _ in range(30):
        y = layer.forward(x)
        grad = (y - target) / y.size
        losses.append(float(np.mean((y - target) ** 2)))
        layer.zero_grad()
        layer.backward(2.0 * grad)
        for param in layer.parameters():
            param.value = param.value - 0.5 * param.grad
    assert losses[-1] < 0.5 * losses[0]


def test_backward_without_forward_raises():
    layer = BlockCirculantLSTM(6, 4, 2, seed=21)
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((2, 3, 4)))


def test_mixed_gate_backends_refuse_the_recording_path():
    layer = BlockCirculantLSTM(8, 8, 4, seed=22)
    layer.xi.backend = "radix2"
    with pytest.raises(ConfigurationError):
        layer.forward(np.zeros((2, 3, 8)))
    # The pure inference path groups by backend instead of refusing.
    layer.eval()
    y = layer.inference_forward(np.ones((2, 3, 8)))
    assert y.shape == (2, 3, 8)


# -- plan/traversal surfaces --------------------------------------------------

def test_planned_layers_expose_each_gate_once():
    net = Sequential(
        BlockCirculantLSTM(10, 8, 4, seed=23),
        BlockCirculantGRU(8, 8, 4, seed=24),
    )
    names = [path for path, _ in net.planned_layers()]
    assert len(names) == 8 + 6
    assert len(set(names)) == len(names)
    assert "layers.0.xi" in names and "layers.1.hn" in names
    # Parameter names hang off the same paths — the store's contract.
    params = dict(net.named_parameters())
    assert "layers.0.xi.weight" in params
    assert "layers.1.hn.weight" in params
