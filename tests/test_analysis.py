"""Tests for complexity accounting and the approximation-bound demo."""

from __future__ import annotations

import pytest

from repro.analysis import (
    approximation_error_curve,
    block_circulant_conv_work,
    block_circulant_fc_work,
    dense_fc_ops,
    fc_compute_speedup,
    fit_inverse_width_law,
    model_work,
    pool_work,
    training_step_ops,
)
from repro.models import (
    alexnet_spec,
    default_alexnet_fc_plan,
    default_alexnet_full_plan,
)
from repro.models.descriptors import ConvSpec, DenseSpec, PoolSpec


class TestFCWork:
    def test_dense_ops(self):
        assert dense_fc_ops(4096, 9216) == 2 * 4096 * 9216

    def test_block_work_counts(self):
        work = block_circulant_fc_work(DenseSpec("fc", 1024, 512), 128)
        p, q = 4, 8
        bins = 65
        assert work.fft_size == 128
        assert work.num_fft == p + q
        assert work.cmult == p * q * bins
        assert work.cadd == p * (q - 1) * bins
        assert work.dense_macs == 1024 * 512

    def test_k1_degenerates_to_dense(self):
        work = block_circulant_fc_work(DenseSpec("fc", 100, 50), 1)
        assert work.fft_size == 0
        assert work.num_fft == 0
        assert work.scalar_ops >= dense_fc_ops(50, 100)

    def test_non_power_of_two_block_pads_fft(self):
        work = block_circulant_fc_work(DenseSpec("fc", 800, 500), 500)
        assert work.fft_size == 512  # radix-2 engine pads to 512

    def test_complexity_reduction_grows_with_k(self):
        speedups = [fc_compute_speedup(4096, 4096, k) for k in (16, 64, 256, 1024)]
        assert speedups == sorted(speedups)
        assert speedups[-1] > 50.0

    def test_speedup_matches_asymptotic_shape(self):
        # O(n^2) / O(n log n) at m = n = k: ratio ~ n / log n.
        ratio_1k = fc_compute_speedup(1024, 1024, 1024)
        ratio_4k = fc_compute_speedup(4096, 4096, 4096)
        growth = ratio_4k / ratio_1k
        # n grows 4x, log n grows 1.2x -> expect ~3.3x growth.
        assert 2.5 < growth < 4.0

    def test_butterflies_and_ops_consistent(self):
        work = block_circulant_fc_work(DenseSpec("fc", 256, 256), 64)
        assert work.fft_real_ops == work.butterflies * 10
        assert work.total_real_ops == work.fft_real_ops + work.peripheral_real_ops


class TestConvWork:
    def test_conv_work_counts(self):
        spec = ConvSpec("conv", 64, 128, 3, in_hw=(16, 16), padding=1)
        work = block_circulant_conv_work(spec, 32)
        positions = 256
        pp, qc, bins, r2 = 4, 2, 17, 9
        assert work.num_fft == positions * (r2 * qc + pp)
        assert work.cmult == positions * r2 * pp * qc * bins
        assert work.dense_macs == spec.macs

    def test_conv_k1_is_dense_macs(self):
        spec = ConvSpec("conv", 3, 96, 11, in_hw=(227, 227), stride=4)
        work = block_circulant_conv_work(spec, 1)
        assert work.scalar_ops >= 2 * spec.macs

    def test_conv_compression_reduces_ops(self):
        spec = ConvSpec("conv", 256, 384, 3, in_hw=(13, 13), padding=1)
        dense_ops = 2 * spec.macs
        compressed = block_circulant_conv_work(spec, 32).total_real_ops
        assert dense_ops / compressed > 5.0

    def test_pool_work_is_linear(self):
        spec = PoolSpec("pool", 96, 3, in_hw=(55, 55), stride=2)
        work = pool_work(spec)
        assert work.fft_size == 0
        assert work.scalar_ops == spec.comparisons
        assert work.dense_macs == 0


class TestModelWork:
    def test_covers_every_layer(self):
        spec = alexnet_spec()
        works = model_work(spec, default_alexnet_full_plan())
        assert [w.name for w in works] == [l.name for l in spec.layers]

    def test_equivalent_macs_preserved(self):
        spec = alexnet_spec()
        works = model_work(spec, default_alexnet_full_plan())
        assert sum(w.dense_macs for w in works) == spec.total_macs

    def test_full_plan_cheaper_than_fc_plan(self):
        spec = alexnet_spec()
        fc_only = sum(
            w.total_real_ops for w in model_work(spec, default_alexnet_fc_plan())
        )
        full = sum(
            w.total_real_ops
            for w in model_work(spec, default_alexnet_full_plan())
        )
        assert full < fc_only


class TestTrainingOps:
    def test_dense_training_is_three_products(self):
        ops = training_step_ops(512, 512, 1, batch=4)
        assert ops["dense"] == 3 * dense_fc_ops(512, 512) * 4
        assert ops["block_circulant"] == ops["dense"]

    def test_block_training_speedup_band(self):
        ops = training_step_ops(2048, 2048, 256, batch=32)
        speedup = ops["dense"] / ops["block_circulant"]
        assert speedup > 10.0

    def test_training_speedup_grows_with_k(self):
        speedups = []
        for k in (32, 128, 512):
            ops = training_step_ops(2048, 2048, k, batch=8)
            speedups.append(ops["dense"] / ops["block_circulant"])
        assert speedups == sorted(speedups)


class TestApproximation:
    def test_error_decreases_with_width(self):
        curve = approximation_error_curve(
            [16, 64, 256], block_size=8, num_samples=768, num_seeds=2, seed=0
        )
        errors = [e for _, e in curve]
        assert errors[0] > errors[-1]

    def test_inverse_width_fit_positive_exponent(self):
        curve = approximation_error_curve(
            [16, 64, 256], block_size=8, num_samples=768, num_seeds=2, seed=0
        )
        fit = fit_inverse_width_law(curve)
        # Consistent with universal approximation: error shrinks with n.
        assert fit.alpha > 0.1

    def test_fit_on_exact_inverse_law(self):
        curve = [(n, 10.0 / n) for n in (8, 16, 32, 64)]
        fit = fit_inverse_width_law(curve)
        assert fit.alpha == pytest.approx(1.0, abs=1e-9)

    def test_fit_requires_two_points(self):
        with pytest.raises(Exception):
            fit_inverse_width_law([(8, 0.5)])
