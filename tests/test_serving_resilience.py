"""Multi-process resilience tests: watchdog, retries, brownout, races.

Every scenario is deterministic via :class:`BatchGate` (a parked worker
is the stand-in for a wedged forward) and seeded retry jitter. Marked
``mp`` (spawns worker processes); tier-1 excludes it, CI runs it in the
dedicated mp job.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    QueueFullError,
    ServerClosedError,
    ServingError,
    WorkerCrashedError,
    WorkerWedgedError,
)
from repro.nn import BlockCirculantDense, ReLU, Sequential
from repro.quant import quantized_view
from repro.serving import (
    BatchGate,
    DegradationController,
    DegradationPolicy,
    ModelRegistry,
    MPInferenceServer,
    RetryPolicy,
)

pytestmark = pytest.mark.mp

WEDGE_TIMEOUT_S = 0.75


def _fc_net(seed: int = 0) -> Sequential:
    net = Sequential(
        BlockCirculantDense(32, 32, 8, seed=seed),
        ReLU(),
        BlockCirculantDense(32, 16, 4, seed=seed + 1),
    )
    net.compile_inference()
    return net


def _spawn_gate() -> BatchGate:
    import multiprocessing

    return BatchGate(multiprocessing.get_context("spawn"))


@pytest.fixture
def watchdog_server():
    """One worker, armed-able gate, wedge watchdog on, no retries."""
    net = _fc_net()
    gate = _spawn_gate()
    server = MPInferenceServer(
        net, workers=1, max_batch=1, max_wait_ms=0.0, queue_depth=8,
        batch_gate=gate, wedge_timeout_s=WEDGE_TIMEOUT_S,
    )
    server.start()
    x = np.random.default_rng(7).normal(size=32)
    expected = net.inference_forward(x[None])[0]
    np.testing.assert_array_equal(server.infer(x, timeout=120.0), expected)
    try:
        yield server, gate, x, expected
    finally:
        gate.open()
        server.stop(drain_timeout_s=30.0)


@pytest.fixture
def resilient_server():
    """One worker, gate, watchdog *and* deadline-aware retries."""
    net = _fc_net()
    gate = _spawn_gate()
    server = MPInferenceServer(
        net, workers=1, max_batch=1, max_wait_ms=0.0, queue_depth=8,
        batch_gate=gate, wedge_timeout_s=WEDGE_TIMEOUT_S,
        retry=RetryPolicy(max_attempts=4, backoff_ms=5.0, jitter=0.25,
                          seed=1234),
    )
    server.start()
    x = np.random.default_rng(7).normal(size=32)
    expected = net.inference_forward(x[None])[0]
    np.testing.assert_array_equal(server.infer(x, timeout=120.0), expected)
    try:
        yield server, gate, x, expected
    finally:
        gate.open()
        server.stop(drain_timeout_s=30.0)


class TestWedgeWatchdog:
    def test_wedged_worker_is_killed_and_batch_fails_with_wedged_error(
        self, watchdog_server
    ):
        server, gate, x, expected = watchdog_server
        # Park the worker inside the forward and never open the gate —
        # the deterministic stand-in for a stuck kernel.
        gate.reset()
        gate.arm()
        future = server.submit(x)
        assert gate.entered.wait(30.0), "worker never entered the batch"
        entered = time.monotonic()
        wedged_pid = gate.pid.value
        with pytest.raises(WorkerWedgedError, match="wedge_timeout_s"):
            future.result(60.0)
        elapsed = time.monotonic() - entered
        # Not killed early: the watchdog waits out the full timeout
        # (small margin for the heartbeat landing before the park)...
        assert elapsed > WEDGE_TIMEOUT_S * 0.5
        # ...and not late: detection is the timeout plus at most a few
        # collector scan periods (wedge_timeout_s/4 each), not a hang.
        assert elapsed < WEDGE_TIMEOUT_S + 10.0
        # The wedged process really is gone (SIGKILL, not a warning).
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                os.kill(wedged_pid, 0)
                time.sleep(0.01)
            except ProcessLookupError:
                break
        else:
            pytest.fail("wedged worker process still alive after the kill")
        # Respawned from the shared images: serves bit-identically.
        np.testing.assert_array_equal(
            server.infer(x, timeout=120.0), expected
        )
        stats = server.stats()
        assert stats["wedged"] == 1
        assert stats["crashes"] == 0
        assert stats["respawns"] == 1

    def test_wedge_with_retries_is_invisible_to_the_client(
        self, resilient_server
    ):
        server, gate, x, expected = resilient_server
        gate.reset()
        gate.arm()
        future = server.submit(x)
        assert gate.entered.wait(30.0)
        # Watchdog kills the parked worker; the retry lands on the
        # respawned worker (the gate's armed budget was consumed by the
        # first attempt) and the response is bit-identical — the client
        # sees latency, not an error.
        np.testing.assert_array_equal(future.result(60.0).y, expected)
        stats = server.stats()
        assert stats["wedged"] == 1
        assert stats["retries"] >= 1
        assert stats["errors"] == 0

    def test_crash_with_retries_is_invisible_to_the_client(
        self, resilient_server
    ):
        server, gate, x, expected = resilient_server
        gate.reset()
        gate.arm()
        future = server.submit(x)
        assert gate.entered.wait(30.0)
        os.kill(gate.pid.value, signal.SIGKILL)
        np.testing.assert_array_equal(future.result(60.0).y, expected)
        stats = server.stats()
        assert stats["crashes"] == 1
        assert stats["retries"] >= 1
        assert stats["errors"] == 0

    def test_retry_respects_request_deadline(self, resilient_server):
        # A request whose deadline cannot admit another attempt fails
        # with the original wedge/crash error instead of a futile retry.
        server, gate, x, expected = resilient_server
        gate.reset()
        gate.arm()
        # Deadline far enough to survive batching but inside the wedge
        # window: by the time the watchdog kills the worker the retry
        # could not start before the deadline.
        future = server.submit(x, deadline_ms=WEDGE_TIMEOUT_S * 500.0)
        assert gate.entered.wait(30.0)
        with pytest.raises(WorkerWedgedError):
            future.result(60.0)
        assert server.stats()["retries"] == 0


class TestLeastLoadedDispatch:
    def test_requests_route_around_a_busy_worker(self):
        # With one of two workers parked inside a batch, least-loaded
        # dispatch sends every following request to the idle sibling
        # (load 0 beats the parked worker's load 1) — under round-robin,
        # every other request would queue behind the parked worker and
        # stall until the gate opens. Followers run one at a time so the
        # load comparison at each dispatch is exact, not racing.
        net = _fc_net()
        gate = _spawn_gate()
        server = MPInferenceServer(
            net, workers=2, max_batch=1, max_wait_ms=0.0, queue_depth=16,
            batch_gate=gate,
        )
        server.start()
        x = np.random.default_rng(3).normal(size=32)
        expected = net.inference_forward(x[None])[0]
        try:
            # Warm both workers (round-robin over equal loads).
            server.infer_many([x, x], timeout=120.0)
            gate.reset()
            gate.arm()
            parked = server.submit(x)
            assert gate.entered.wait(30.0)
            for _ in range(6):
                np.testing.assert_array_equal(
                    server.infer(x, timeout=30.0), expected
                )
            gate.open()
            np.testing.assert_array_equal(
                parked.result(30.0).y, expected
            )
        finally:
            gate.open()
            server.stop(drain_timeout_s=30.0)


class TestPerEndpointStats:
    def test_breakdown_reset_and_flat_totals(self):
        registry = ModelRegistry()
        net_a, net_b = _fc_net(seed=1), _fc_net(seed=5)
        registry.register("a", net_a)
        registry.register("b", net_b)
        xa = np.random.default_rng(1).normal(size=32)
        with MPInferenceServer(
            registry, workers=1, max_batch=4, max_wait_ms=1.0,
            queue_depth=64,
        ) as server:
            server.infer_many([xa] * 6, endpoint="a", timeout=120.0)
            server.infer_many([xa] * 2, endpoint="b", timeout=120.0)
            stats_a = server.stats("a")
            stats_b = server.stats("b")
            assert stats_a["requests"] == 6
            assert stats_a["responses"] == 6
            assert stats_b["requests"] == 2
            assert stats_a["errors"] == stats_b["errors"] == 0
            flat = server.stats()
            assert flat["requests"] == 8
            assert flat["responses"] == 8
            assert flat["per_endpoint"]["a"]["responses"] == 6
            assert flat["per_endpoint"]["b"]["responses"] == 2
            # An endpoint that never saw traffic reads as zeros.
            assert server.stats("ghost")["requests"] == 0
            server.reset_stats()
            assert server.stats()["requests"] == 0
            assert server.stats("a")["responses"] == 0
            # Counters keep working after the reset.
            server.infer(xa, endpoint="a", timeout=120.0)
            assert server.stats("a")["responses"] == 1


class TestStopRaces:
    def test_submit_concurrent_with_stop_raises_clean_serving_error(self):
        # Hammer submit() from client threads while stop() runs. Every
        # call must either resolve or raise a ServingError subclass —
        # never BrokenPipeError, never a hang.
        net = _fc_net()
        server = MPInferenceServer(
            net, workers=2, max_batch=4, max_wait_ms=0.5, queue_depth=32,
        )
        server.start()
        x = np.random.default_rng(11).normal(size=32)
        server.infer(x, timeout=120.0)  # warm
        bad: list[BaseException] = []
        done = threading.Event()
        lock = threading.Lock()

        def client():
            while not done.is_set():
                try:
                    future = server.submit(x)
                except ServingError:
                    if not server.running:
                        return
                    continue
                except BaseException as exc:  # noqa: BLE001 - recorded
                    with lock:
                        bad.append(exc)
                    return
                try:
                    future.result(60.0)
                except ServingError:
                    pass
                except BaseException as exc:  # noqa: BLE001 - recorded
                    with lock:
                        bad.append(exc)
                    return

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.3)
        server.stop(drain_timeout_s=30.0)
        done.set()
        for t in threads:
            t.join(timeout=60.0)
            assert not t.is_alive(), "client thread hung across stop()"
        assert bad == []
        with pytest.raises(ServerClosedError):
            server.submit(x)
        with pytest.raises(ConfigurationError):  # back-compat contract
            server.submit(x)

    def test_retry_landing_after_stop_fails_fast(self):
        # Kill the only worker so a retry is scheduled with a long
        # backoff, then stop() with a short drain: the pending retry is
        # claimed and failed fast with the original fault — the client
        # never waits out the backoff, and stop() never hangs.
        net = _fc_net()
        gate = _spawn_gate()
        server = MPInferenceServer(
            net, workers=1, max_batch=1, max_wait_ms=0.0, queue_depth=8,
            batch_gate=gate,
            retry=RetryPolicy(max_attempts=3, backoff_ms=30_000.0,
                              jitter=0.0, seed=0),
        )
        server.start()
        x = np.random.default_rng(2).normal(size=32)
        server.infer(x, timeout=120.0)  # warm
        gate.reset()
        gate.arm()
        future = server.submit(x)
        assert gate.entered.wait(30.0)
        os.kill(gate.pid.value, signal.SIGKILL)
        begin = time.monotonic()
        server.stop(drain_timeout_s=1.0)
        with pytest.raises(WorkerCrashedError):
            future.result(10.0)
        # Far faster than the 30s retry backoff.
        assert time.monotonic() - begin < 20.0


class TestBrownoutLadderMP:
    def _ladder_registry(self):
        full = _fc_net(seed=0)
        low = quantized_view(full, 4).compile_inference()
        registry = ModelRegistry()
        registry.set_ladder("fc", [full, low])
        return registry, full, low

    def test_downshift_is_atomic_old_or_new_never_mixed(self):
        registry, full, low = self._ladder_registry()
        x = np.random.default_rng(5).normal(size=32)
        want_full = full.inference_forward(x[None])[0]
        want_low = low.inference_forward(x[None])[0]
        assert not np.array_equal(want_full, want_low)
        with MPInferenceServer(
            registry, workers=2, max_batch=4, max_wait_ms=0.5,
            queue_depth=256,
        ) as server:
            server.infer(x, endpoint="fc", timeout=120.0)  # warm
            gen_before = registry.generation("fc")
            futures = []
            swapped = threading.Event()

            def downshift():
                time.sleep(0.02)
                registry.serve_level("fc", 1)
                swapped.set()

            swapper = threading.Thread(target=downshift)
            swapper.start()
            for _ in range(200):
                futures.append(server.submit(x, endpoint="fc"))
                time.sleep(0.0005)
            swapper.join()
            assert registry.ladder_level("fc") == 1
            saw_new = 0
            # The two rungs differ at ~1e-1 (4-bit weights); a 1e-9
            # tolerance separates them unambiguously while allowing the
            # last-ulp batch-size-dependent FFT summation differences.
            def matches(y, want):
                return np.allclose(y, want, rtol=1e-9, atol=1e-9)

            for future in futures:
                response = future.result(120.0)
                # Old-or-new, never mixed: every row matches exactly one
                # rung's output, and the generation tag agrees with
                # which one.
                assert matches(response.y, want_full) != matches(
                    response.y, want_low
                ), "response matches neither rung (or both): mixed swap?"
                if response.generation == gen_before:
                    assert matches(response.y, want_full)
                else:
                    assert response.generation == gen_before + 1
                    assert matches(response.y, want_low)
                    saw_new += 1
            assert saw_new > 0, "no request observed the downshifted rung"
            # Recovery path: step back up, served bit-identically again.
            registry.serve_level("fc", 0)
            np.testing.assert_array_equal(
                server.infer(x, endpoint="fc", timeout=120.0), want_full
            )

    def test_controller_steps_down_under_overload_and_recovers(self):
        registry, full, low = self._ladder_registry()
        x = np.random.default_rng(6).normal(size=32)
        want_low = low.inference_forward(x[None])[0]
        with MPInferenceServer(
            registry, workers=1, max_batch=2, max_wait_ms=0.0,
            queue_depth=2,
        ) as server:
            server.infer(x, endpoint="fc", timeout=120.0)  # warm
            controller = DegradationController(
                server, "fc",
                DegradationPolicy(step_down_pressure=0.2,
                                  step_up_pressure=0.05, dwell_s=0.0,
                                  recovery_s=0.15),
            )
            controller.tick()  # baseline counters
            # Overload burst: queue_depth=2 sheds most of a tight burst.
            shed = 0
            admitted = []
            for _ in range(60):
                try:
                    admitted.append(server.submit(x, endpoint="fc"))
                except QueueFullError:
                    shed += 1
            assert shed > 0
            assert controller.tick() == 1, "no downshift under overload"
            assert registry.ladder_level("fc") == 1
            # Let the admitted burst requests resolve so the recovery
            # phase starts with a clear admission queue.
            for future in admitted:
                future.result(120.0)
            np.testing.assert_array_equal(
                server.infer(x, endpoint="fc", timeout=120.0), want_low
            )
            # Quiet period with healthy traffic: recovers with hysteresis
            # (sustained low pressure, not a single quiet sample).
            deadline = time.monotonic() + 30.0
            while controller.level != 0 and time.monotonic() < deadline:
                server.infer(x, endpoint="fc", timeout=120.0)
                controller.tick()
                time.sleep(0.02)
            assert controller.level == 0, "never recovered to rung 0"
            # The recovery was not instantaneous — hysteresis held it
            # down for at least recovery_s after the overload ended.
            ups = [t for t in controller.transitions if t[2] < t[1]]
            downs = [t for t in controller.transitions if t[2] > t[1]]
            assert len(downs) == 1 and len(ups) == 1
            assert ups[0][0] - downs[0][0] >= 0.15


class TestWatchdogConfig:
    def test_wedge_timeout_validation(self):
        with pytest.raises(ConfigurationError):
            MPInferenceServer(_fc_net(), wedge_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            MPInferenceServer(_fc_net(), wedge_timeout_s=-1.0)
