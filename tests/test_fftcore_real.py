"""Tests for the real-input FFT (the paper's Hermitian-symmetry saving)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.fftcore import irfft_real, rfft_real


class TestRfft:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 64, 512])
    def test_matches_numpy_rfft(self, rng, n):
        x = rng.normal(size=n)
        np.testing.assert_allclose(rfft_real(x), np.fft.rfft(x), atol=1e-9)

    def test_batched(self, rng):
        x = rng.normal(size=(4, 7, 32))
        np.testing.assert_allclose(
            rfft_real(x), np.fft.rfft(x, axis=-1), atol=1e-9
        )

    def test_output_width_is_half_spectrum(self, rng):
        # n//2 + 1 bins: the storage saving of the symmetric spectrum.
        for n in (2, 8, 128):
            assert rfft_real(rng.normal(size=n)).shape[-1] == n // 2 + 1

    def test_dc_and_nyquist_bins_are_real(self, rng):
        spectrum = rfft_real(rng.normal(size=64))
        assert spectrum[0].imag == pytest.approx(0.0, abs=1e-10)
        assert spectrum[-1].imag == pytest.approx(0.0, abs=1e-10)


class TestIrfft:
    @pytest.mark.parametrize("n", [2, 4, 16, 256])
    def test_roundtrip(self, rng, n):
        x = rng.normal(size=(3, n))
        np.testing.assert_allclose(irfft_real(rfft_real(x), n), x, atol=1e-9)

    def test_matches_numpy_irfft(self, rng):
        spectrum = np.fft.rfft(rng.normal(size=(2, 64)), axis=-1)
        np.testing.assert_allclose(
            irfft_real(spectrum, 64),
            np.fft.irfft(spectrum, n=64, axis=-1),
            atol=1e-9,
        )

    def test_default_length_inference(self, rng):
        x = rng.normal(size=128)
        np.testing.assert_allclose(irfft_real(rfft_real(x)), x, atol=1e-9)

    def test_output_is_real_dtype(self, rng):
        out = irfft_real(rfft_real(rng.normal(size=32)), 32)
        assert out.dtype == np.float64

    def test_rejects_wrong_bin_count(self, rng):
        with pytest.raises(ShapeError):
            irfft_real(rng.normal(size=10).astype(complex), 64)


class TestRealFFTProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        log_n=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, seed, log_n):
        rng = np.random.default_rng(seed)
        n = 2**log_n
        x = rng.normal(size=n)
        np.testing.assert_allclose(irfft_real(rfft_real(x), n), x, atol=1e-8)

    @given(
        seed=st.integers(0, 2**31 - 1),
        log_n=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_circular_convolution_theorem(self, seed, log_n):
        # The identity the whole paper rests on: circular convolution in
        # time equals element-wise multiplication in frequency.
        rng = np.random.default_rng(seed)
        n = 2**log_n
        a = rng.normal(size=n)
        b = rng.normal(size=n)
        via_fft = irfft_real(rfft_real(a) * rfft_real(b), n)
        direct = np.array(
            [sum(a[m] * b[(t - m) % n] for m in range(n)) for t in range(n)]
        )
        np.testing.assert_allclose(via_fft, direct, atol=1e-7)
