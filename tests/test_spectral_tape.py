"""The spectral training tape (paper Eq. 8–9, ``docs/spectral_training.md``).

A recording forward returns a :class:`repro.circulant.SpectralTape` whose
weight and input/patch spectra the backward kernels reuse, so one full
train step performs exactly one FFT per distinct tensor. These tests pin
down the three contracts:

- **bit-identity**: tape-mode forwards/backwards produce exactly the
  arrays the seed path produced (same FFT values, same contraction);
- **FFT budget**: a dense train step issues exactly 3 rfft calls (down
  from the seed's 5), and the conv step likewise — asserted with
  :class:`repro.fftcore.CountingFFTBackend`;
- **gradient correctness** of the new frequency-major
  :func:`repro.circulant.ops.block_circulant_conv_backward` kernel,
  against finite differences and the seed einsum formulation.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import numeric_gradient
from repro.circulant.ops import (
    SpectralTape,
    block_circulant_backward,
    block_circulant_conv_backward,
    block_circulant_conv_forward,
    block_circulant_forward,
    partition_vector,
    unpartition_vector,
)
from repro.errors import ShapeError
from repro.fftcore import CountingFFTBackend
from repro.fftcore.backend import get_backend
from repro.nn import BlockCirculantDense, Sequential
from repro.nn.block_circulant_conv import BlockCirculantConv2D
from repro.nn.gradcheck import check_module


def _einsum_conv_backward(w, patch_blocks, grad_blocks, backend=None):
    """The seed formulation of the conv gradients (pre-tape reference)."""
    be = get_backend(backend)
    k = w.shape[-1]
    wf = be.rfft(w)
    pf = be.rfft(patch_blocks)
    gf = be.rfft(grad_blocks)
    grad_wf = np.einsum("bif,bsjf->sijf", gf, np.conj(pf), optimize=True)
    grad_pf = np.einsum("sijf,bif->bsjf", np.conj(wf), gf, optimize=True)
    return be.irfft(grad_wf, n=k), be.irfft(grad_pf, n=k)


class TestCountingBackend:
    def test_counts_and_delegates(self, rng):
        be = CountingFFTBackend("numpy")
        x = rng.normal(size=(3, 8))
        np.testing.assert_array_equal(be.rfft(x), np.fft.rfft(x, axis=-1))
        be.irfft(be.rfft(x), n=8)
        be.ifft(be.fft(x))
        assert be.counts == {"fft": 1, "ifft": 1, "rfft": 2, "irfft": 1}
        assert be.total() == 5
        be.reset()
        assert be.total() == 0

    def test_accepted_wherever_backends_go(self, rng):
        be = CountingFFTBackend()
        assert get_backend(be) is be
        layer = BlockCirculantDense(8, 8, 4, seed=0, backend=be)
        layer.forward(rng.normal(size=(2, 8)))
        assert be.counts["rfft"] == 2  # weight + input


class TestRecordMode:
    def test_forward_record_returns_tape(self, rng):
        w = rng.normal(size=(2, 3, 4))
        blocks = rng.normal(size=(5, 3, 4))
        plain = block_circulant_forward(w, blocks)
        out, tape = block_circulant_forward(w, blocks, record=True)
        assert isinstance(tape, SpectralTape)
        np.testing.assert_array_equal(out, plain)
        np.testing.assert_array_equal(tape.blocks, blocks)
        be = get_backend(None)
        np.testing.assert_array_equal(tape.input_spectrum, be.rfft(blocks))
        np.testing.assert_array_equal(tape.weight_spectrum, be.rfft(w))

    def test_conv_forward_record_returns_tape(self, rng):
        w = rng.normal(size=(4, 2, 3, 4))
        patches = rng.normal(size=(6, 4, 3, 4))
        plain = block_circulant_conv_forward(w, patches)
        out, tape = block_circulant_conv_forward(w, patches, record=True)
        np.testing.assert_array_equal(out, plain)
        be = get_backend(None)
        np.testing.assert_array_equal(tape.input_spectrum, be.rfft(patches))
        np.testing.assert_array_equal(tape.weight_spectrum, be.rfft(w))

    def test_backward_accepts_cached_input_spectrum(self, rng):
        w = rng.normal(size=(2, 3, 4))
        blocks = rng.normal(size=(5, 3, 4))
        grad = rng.normal(size=(5, 2, 4))
        _, tape = block_circulant_forward(w, blocks, record=True)
        gw_ref, gx_ref = block_circulant_backward(w, blocks, grad)
        gw, gx = block_circulant_backward(
            w, blocks, grad,
            cached_spectrum=tape.weight_spectrum,
            cached_input_spectrum=tape.input_spectrum,
        )
        np.testing.assert_array_equal(gw, gw_ref)
        np.testing.assert_array_equal(gx, gx_ref)

    def test_bad_cached_input_spectrum_rejected(self, rng):
        w = rng.normal(size=(2, 3, 4))
        blocks = rng.normal(size=(5, 3, 4))
        grad = rng.normal(size=(5, 2, 4))
        with pytest.raises(ShapeError):
            block_circulant_backward(
                w, blocks, grad,
                cached_input_spectrum=np.zeros((5, 3, 4), dtype=complex),
            )


class TestConvBackwardKernel:
    def test_matches_einsum_reference(self, rng):
        w = rng.normal(size=(4, 2, 3, 4))
        patches = rng.normal(size=(6, 4, 3, 4))
        grad = rng.normal(size=(6, 2, 4))
        gw, gp = block_circulant_conv_backward(w, patches, grad)
        gw_ref, gp_ref = _einsum_conv_backward(w, patches, grad)
        np.testing.assert_allclose(gw, gw_ref, rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(gp, gp_ref, rtol=1e-12, atol=1e-14)

    def test_cached_spectra_are_bit_identical(self, rng):
        w = rng.normal(size=(4, 2, 3, 4))
        patches = rng.normal(size=(6, 4, 3, 4))
        grad = rng.normal(size=(6, 2, 4))
        _, tape = block_circulant_conv_forward(w, patches, record=True)
        plain = block_circulant_conv_backward(w, patches, grad)
        taped = block_circulant_conv_backward(
            w, patches, grad,
            cached_spectrum=tape.weight_spectrum,
            cached_patch_spectrum=tape.input_spectrum,
        )
        np.testing.assert_array_equal(taped[0], plain[0])
        np.testing.assert_array_equal(taped[1], plain[1])

    def test_gradients_match_finite_differences(self, rng):
        w = rng.normal(size=(4, 2, 2, 4))
        patches = rng.normal(size=(3, 4, 2, 4))
        cot = rng.normal(size=(3, 2, 4))

        def loss() -> float:
            return float(
                np.sum(block_circulant_conv_forward(w, patches) * cot)
            )

        grad_w, grad_p = block_circulant_conv_backward(w, patches, cot)
        np.testing.assert_allclose(
            grad_w, numeric_gradient(loss, w), atol=1e-5
        )
        np.testing.assert_allclose(
            grad_p, numeric_gradient(loss, patches), atol=1e-5
        )

    def test_gradients_radix2_backend(self, rng):
        w = rng.normal(size=(4, 1, 2, 4))
        patches = rng.normal(size=(2, 4, 2, 4))
        grad = rng.normal(size=(2, 1, 4))
        gw_np, gp_np = block_circulant_conv_backward(w, patches, grad)
        gw_r2, gp_r2 = block_circulant_conv_backward(
            w, patches, grad, "radix2"
        )
        np.testing.assert_allclose(gw_r2, gw_np, atol=1e-10)
        np.testing.assert_allclose(gp_r2, gp_np, atol=1e-10)

    def test_shape_validation(self, rng):
        w = rng.normal(size=(4, 2, 3, 4))
        patches = rng.normal(size=(6, 4, 3, 4))
        grad = rng.normal(size=(6, 2, 4))
        with pytest.raises(ShapeError):
            block_circulant_conv_backward(w[0], patches, grad)
        with pytest.raises(ShapeError):
            block_circulant_conv_backward(w, patches[:, :2], grad)
        with pytest.raises(ShapeError):
            block_circulant_conv_backward(w, patches, grad[:, :1])
        with pytest.raises(ShapeError):
            block_circulant_conv_backward(w, patches[:4], grad)
        with pytest.raises(ShapeError):
            block_circulant_conv_backward(
                w, patches, grad, cached_patch_spectrum=patches
            )


class TestDenseLayerTape:
    def test_bit_identical_to_seed_path(self, rng):
        # Non-divisible shapes: in=10 -> q=3 blocks of 4 (padded),
        # out=7 -> p=2 blocks of 4 (padded rows dropped).
        layer = BlockCirculantDense(10, 7, 4, seed=0)
        x = rng.normal(size=(3, 10))
        out = layer.forward(x)
        cot = rng.normal(size=out.shape)
        grad_in = layer.backward(cot)
        # Seed formulation: the same kernels with no cached spectra.
        blocks = partition_vector(x, 4, layer.q)
        ref = unpartition_vector(
            block_circulant_forward(layer.weight.value, blocks), 7
        ) + layer.bias.value
        grad_blocks = partition_vector(cot, 4, layer.p)
        gw_ref, gx_ref = block_circulant_backward(
            layer.weight.value, blocks, grad_blocks
        )
        np.testing.assert_array_equal(out, ref)
        np.testing.assert_array_equal(layer.weight.grad, gw_ref)
        np.testing.assert_array_equal(
            grad_in, unpartition_vector(gx_ref, 10)
        )

    def test_train_step_is_three_rffts(self, rng):
        be = CountingFFTBackend("numpy")
        layer = BlockCirculantDense(16, 16, 4, seed=0, backend=be)
        x = rng.normal(size=(4, 16))
        out = layer.forward(x)
        layer.backward(rng.normal(size=out.shape))
        # Seed path was 5 (w and x transformed in both passes); the tape
        # leaves one rfft per distinct tensor: w, x, grad.
        assert be.counts["rfft"] == 3

    def test_gradcheck_still_passes(self, rng):
        layer = BlockCirculantDense(10, 7, 4, seed=3)
        report = check_module(layer, rng.normal(size=(2, 10)))
        assert report.ok, report.describe()

    def test_backward_before_forward_raises(self):
        layer = BlockCirculantDense(8, 8, 4, seed=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((2, 8)))


class TestConvLayerTape:
    def test_bit_identical_to_seed_path(self, rng):
        # Non-divisible channel counts exercise both padded directions.
        layer = BlockCirculantConv2D(3, 5, 3, 2, seed=0)
        x = rng.normal(size=(2, 3, 6, 6))
        out = layer.forward(x)
        tape = layer._tape  # backward consumes (and releases) the tape
        cot = rng.normal(size=out.shape)
        grad_in = layer.backward(cot)
        # Forward is unchanged structurally; assert against a fresh
        # kernel call on the recorded patch blocks.
        ref_blocks = block_circulant_conv_forward(
            layer.weight.value, tape.blocks
        )
        positions = out.shape[2] * out.shape[3]
        ref = ref_blocks.reshape(2 * positions, layer.pp * 2)[:, :5]
        ref = ref + layer.bias.value
        ref = ref.reshape(2, positions, 5).transpose(0, 2, 1).reshape(
            out.shape
        )
        np.testing.assert_array_equal(out, ref)
        # Gradients agree with the seed einsum formulation to roundoff
        # (the contraction became a per-frequency GEMM) and with finite
        # differences via the gradcheck below.
        grad_flat = cot.reshape(2, 5, positions).transpose(0, 2, 1)
        grad_flat = grad_flat.reshape(2 * positions, 5)
        padded = np.zeros((2 * positions, layer.pp * 2))
        padded[:, :5] = grad_flat
        gw_ref, _ = _einsum_conv_backward(
            layer.weight.value, tape.blocks,
            padded.reshape(2 * positions, layer.pp, 2),
        )
        np.testing.assert_allclose(
            layer.weight.grad, gw_ref, rtol=1e-12, atol=1e-14
        )
        assert grad_in.shape == x.shape

    def test_train_step_is_three_rffts(self, rng):
        be = CountingFFTBackend("numpy")
        layer = BlockCirculantConv2D(4, 4, 3, 2, seed=0, backend=be)
        x = rng.normal(size=(2, 4, 5, 5))
        out = layer.forward(x)
        layer.backward(rng.normal(size=out.shape))
        # Same bound as the dense layer: w, patches, grad — the seed
        # path re-transformed w and the patches in backward (5 calls).
        assert be.counts["rfft"] == 3

    def test_gradcheck_through_layer(self, rng):
        layer = BlockCirculantConv2D(2, 3, 2, 2, seed=1)
        report = check_module(layer, rng.normal(size=(2, 2, 4, 4)))
        assert report.ok, report.describe()

    def test_zero_pad_buffer_is_float64(self, rng):
        layer = BlockCirculantConv2D(2, 3, 2, 2, seed=1)
        x = rng.normal(size=(1, 2, 4, 4))
        out = layer.forward(x)
        grad_in = layer.backward(np.asarray(out, dtype=np.float64))
        assert grad_in.dtype == np.float64
        assert layer.weight.grad.dtype == np.float64


class TestFirstLayerInputGradSkip:
    def test_dense_skip_returns_none_same_weight_grads(self, rng):
        x = rng.normal(size=(3, 10))
        cot = rng.normal(size=(3, 7))
        full = BlockCirculantDense(10, 7, 4, seed=0)
        full.forward(x)
        full.backward(cot)
        skip = BlockCirculantDense(10, 7, 4, seed=0)
        skip.needs_input_grad = False
        skip.forward(x)
        assert skip.backward(cot) is None
        np.testing.assert_array_equal(skip.weight.grad, full.weight.grad)
        np.testing.assert_array_equal(skip.bias.grad, full.bias.grad)

    def test_conv_skip_returns_none_same_weight_grads(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        full = BlockCirculantConv2D(3, 5, 3, 2, seed=0)
        cot = rng.normal(size=full.forward(x).shape)
        full.backward(cot)
        skip = BlockCirculantConv2D(3, 5, 3, 2, seed=0)
        skip.needs_input_grad = False
        skip.forward(x)
        assert skip.backward(cot) is None
        np.testing.assert_array_equal(skip.weight.grad, full.weight.grad)
        np.testing.assert_array_equal(skip.bias.grad, full.bias.grad)

    def test_kernel_level_flags(self, rng):
        w = rng.normal(size=(2, 3, 4))
        blocks = rng.normal(size=(5, 3, 4))
        grad = rng.normal(size=(5, 2, 4))
        gw, gx = block_circulant_backward(
            w, blocks, grad, compute_input_grad=False
        )
        assert gx is None
        np.testing.assert_array_equal(
            gw, block_circulant_backward(w, blocks, grad)[0]
        )
        wc = rng.normal(size=(4, 2, 3, 4))
        patches = rng.normal(size=(6, 4, 3, 4))
        gradc = rng.normal(size=(6, 2, 4))
        gw, gp = block_circulant_conv_backward(
            wc, patches, gradc, compute_patch_grad=False
        )
        assert gp is None
        np.testing.assert_array_equal(
            gw, block_circulant_conv_backward(wc, patches, gradc)[0]
        )

    def test_sequential_stops_at_none_gradient(self, rng):
        # A non-trainable layer (Flatten) ahead of the skipping layer
        # must not receive None: Sequential.backward short-circuits.
        from repro.nn import Flatten

        net = Sequential(Flatten(), BlockCirculantDense(16, 4, 2, seed=0))
        net.layers[1].needs_input_grad = False
        x = rng.normal(size=(3, 4, 4))
        out = net.forward(x)
        assert net.backward(rng.normal(size=out.shape)) is None
        assert np.any(net.layers[1].weight.grad != 0.0)

    def test_skip_on_non_first_trainable_layer_raises(self, rng):
        # Clearing the flag anywhere but the first trainable layer would
        # silently zero the earlier layers' gradients; it must raise.
        from repro.errors import ConfigurationError

        net = Sequential(
            BlockCirculantDense(8, 8, 2, seed=0),
            BlockCirculantDense(8, 4, 2, seed=1),
        )
        net.layers[1].needs_input_grad = False
        out = net.forward(rng.normal(size=(2, 8)))
        with pytest.raises(ConfigurationError, match="first trainable"):
            net.backward(rng.normal(size=out.shape))

    def test_registry_compiles_attach_only_network(self, rng):
        # attach_spectral_cache() is a training-mode cache, not proof of
        # serving-readiness: registering must still compile (freeze+warm).
        from repro.serving import ModelRegistry

        net = Sequential(
            BlockCirculantDense(8, 8, 2, seed=0)
        ).attach_spectral_cache()
        registry = ModelRegistry()
        registry.register("ep", net)
        layer = net.layers[0]
        assert not layer.training
        assert layer.weight.frozen
        with pytest.raises(ValueError):
            layer.weight.value[0, 0, 0] = 1.0  # element writes must raise

    def test_tape_released_after_backward(self, rng):
        layer = BlockCirculantDense(8, 8, 4, seed=0)
        out = layer.forward(rng.normal(size=(2, 8)))
        assert layer._tape is not None
        layer.backward(np.asarray(out))
        assert layer._tape is None  # consumed, memory released
        with pytest.raises(RuntimeError):
            layer.backward(np.asarray(out))

    def test_trainer_works_with_first_layer_skip(self, rng):
        from repro.nn import SGD, Trainer

        net = Sequential(BlockCirculantDense(8, 4, 2, seed=0))
        net.layers[0].needs_input_grad = False
        trainer = Trainer(net, SGD(net.parameters(), lr=0.05), seed=0)
        x = rng.normal(size=(12, 8))
        y = rng.integers(0, 4, size=12)
        loss, _ = trainer.train_epoch(x, y, batch_size=4)
        assert np.isfinite(loss)


class TestTrainingModeCache:
    def test_multi_forward_accumulation_reuses_weight_spectrum(self, rng):
        be = CountingFFTBackend("numpy")
        layer = BlockCirculantDense(16, 16, 4, seed=0, backend=be)
        layer.attach_spectral_cache()
        assert layer.training  # attach does not flip modes
        assert not layer.weight.frozen  # ...and does not freeze
        x = rng.normal(size=(4, 16))
        out = layer.forward(x)   # weight miss + input: 2 rffts
        layer.forward(x)         # weight hit + input: 1 rfft
        layer.backward(rng.normal(size=out.shape))  # grad only: 1 rfft
        assert be.counts["rfft"] == 4  # seed path would have used 7

    def test_optimiser_step_invalidates(self, rng):
        layer = BlockCirculantDense(16, 16, 4, seed=0)
        layer.attach_spectral_cache()
        x = rng.normal(size=(2, 16))
        layer.forward(x)
        misses = layer.spectral_cache.stats()["misses"]
        layer.weight.value = layer.weight.value * 0.9  # optimiser-style
        out = layer.forward(x)
        assert layer.spectral_cache.stats()["misses"] == misses + 1
        # And the served values track the new weights bit-exactly.
        cache = layer.spectral_cache
        layer.spectral_cache = None
        try:
            np.testing.assert_array_equal(out, layer.forward(x))
        finally:
            layer.spectral_cache = cache

    def test_network_level_attach(self, rng):
        net = Sequential(
            BlockCirculantDense(12, 12, 4, seed=0),
            BlockCirculantDense(12, 6, 2, seed=1),
        ).attach_spectral_cache()
        assert net.training
        assert net.layers[0].spectral_cache is net.spectral_cache
        assert net.layers[1].spectral_cache is net.spectral_cache
        x = rng.normal(size=(2, 12))
        net.forward(x)
        assert len(net.spectral_cache) == 2

    def test_conv_attach_reuses_across_steps(self, rng):
        be = CountingFFTBackend("numpy")
        layer = BlockCirculantConv2D(4, 4, 3, 2, seed=0, backend=be)
        layer.attach_spectral_cache()
        x = rng.normal(size=(1, 4, 5, 5))
        out = layer.forward(x)
        layer.backward(np.asarray(out))
        first_step = be.counts["rfft"]      # w (miss) + patches + grad
        out = layer.forward(x)
        layer.backward(np.asarray(out))
        second_step = be.counts["rfft"] - first_step
        assert first_step == 3
        assert second_step == 2             # weight spectrum reused
