"""Tests for the experiment harnesses and result tables.

The fast experiments (everything except fig7b's training runs and the
wall-clock training_speedup measurement) run in full here and must satisfy
every paper band; the slow ones are covered by their benchmarks and by
structural checks.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    BandCheck,
    ExperimentTable,
    available_experiments,
    get_experiment,
    run_experiment,
)
from repro.experiments import paper_values


class TestTables:
    def test_band_check_semantics(self):
        band = BandCheck(low=1.0, high=2.0)
        assert band.holds(1.5)
        assert band.holds(1.0) and band.holds(2.0)
        assert not band.holds(0.5)
        assert not band.holds(2.5)

    def test_open_bands(self):
        assert BandCheck(low=1.0).holds(1e9)
        assert BandCheck(high=1.0).holds(-1e9)

    def test_table_aggregation(self):
        table = ExperimentTable("t", "test")
        table.add("a", 1.0, band=BandCheck(low=0.5))
        table.add("b", 2.0)
        assert table.all_bands_hold
        table.add("c", 0.1, band=BandCheck(low=0.5))
        assert not table.all_bands_hold
        assert [r.label for r in table.failures()] == ["c"]

    def test_row_lookup(self):
        table = ExperimentTable("t", "test")
        table.add("a", 1.0)
        assert table.row("a").measured == 1.0
        with pytest.raises(KeyError):
            table.row("missing")

    def test_render_mentions_rows_and_verdicts(self):
        table = ExperimentTable("t", "test title")
        table.add("metric", 3.14, "GOPS", paper=3.0, band=BandCheck(low=1.0))
        text = table.render()
        assert "metric" in text and "3.14" in text and "OK" in text


class TestRegistry:
    def test_all_ids_registered(self):
        expected = {
            "fig7a", "fig7b", "fig7c", "fig13", "fig14", "fig15",
            "sec43", "sec53", "training_speedup",
        }
        assert set(available_experiments()) == expected

    def test_unknown_id(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_get_returns_callable(self):
        assert callable(get_experiment("fig13"))


class TestFastExperimentsHoldPaperBands:
    """Each fast harness must reproduce its paper claims end to end."""

    @pytest.mark.parametrize(
        "experiment_id",
        ["fig7a", "fig7c", "fig13", "fig14", "fig15", "sec43", "sec53"],
    )
    def test_bands_hold(self, experiment_id):
        table = run_experiment(experiment_id)
        assert table.all_bands_hold, table.render()

    def test_fig7a_reaches_the_papers_scale(self):
        table = run_experiment("fig7a")
        assert table.row("max FC saving").measured >= 400.0
        whole = table.row("alexnet whole-model (FC-only plan)").measured
        assert 30.0 <= whole <= 50.0

    def test_fig13_headline_ratios(self):
        table = run_experiment("fig13")
        ese = table.row("EE improvement vs FPGA17_Han_ESE").measured
        qiu = table.row("EE improvement vs FPGA16_Qiu").measured
        assert ese < qiu  # compressed references are closer competitors

    def test_fig14_ordering_matches_paper(self):
        table = run_experiment("fig14")
        assert table.row("mnist throughput vs TrueNorth").measured > 1.0
        assert table.row("svhn throughput vs TrueNorth").measured > 1.0
        assert table.row("cifar10 throughput vs TrueNorth").measured < 1.0

    def test_fig15_multiplicative_consistency(self):
        table = run_experiment("fig15")
        base = table.row("EE improvement vs best (ISSCC17_ST)").measured
        factor = table.row("near-threshold 4-bit factor").measured
        total = table.row("total improvement vs best").measured
        assert total == pytest.approx(base * factor, rel=1e-6)

    def test_fig15_headline_band(self):
        # Abstract: "6 - 102x energy efficiency improvements".
        table = run_experiment("fig15")
        low, high = paper_values.HEADLINE_IMPROVEMENT_BAND
        base = table.row("EE improvement vs best (ISSCC17_ST)").measured
        assert base >= low
        total = table.row("total improvement vs best").measured
        assert total >= high * 0.7

    def test_sec43_gains(self):
        table = run_experiment("sec43")
        assert table.row("perf gain, p 16->32 (d=1)").measured == pytest.approx(
            paper_values.SEC43_P_PERF_GAIN, abs=0.08
        )
        assert table.row("perf gain, d 1->2 (p=32)").measured == pytest.approx(
            paper_values.SEC43_D_PERF_GAIN, abs=0.10
        )

    def test_sec53_arm_beats_gpu_on_large_fc(self):
        table = run_experiment("sec53")
        assert table.row("AlexNet-FC ARM vs GPU").measured > 1.0


class TestSlowExperimentStructure:
    """Structural (not full-run) checks for the training experiments."""

    def test_fig7b_signature_defaults(self):
        import inspect

        from repro.experiments.fig7 import run_fig7b

        params = inspect.signature(run_fig7b).parameters
        assert "epochs" in params and "noise" in params

    def test_training_speedup_small_run(self):
        from repro.experiments.training_speedup import run_training_speedup

        table = run_training_speedup(
            n_visible=256, n_hidden=256, block_size=64, num_samples=16,
            batch_size=8, repeats=1,
        )
        # At this small size the wall-clock ratio band is not asserted,
        # but structure and the analytic rows must hold.
        assert table.row("operation-count speedup").measured > 5.0
        assert table.row("parameter reduction").measured == pytest.approx(64.0)
