"""Tests for CirculantMatrix: algebra, conventions, FFT products."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circulant import CirculantMatrix
from repro.errors import ShapeError


class TestConstruction:
    def test_defining_vector_is_first_column(self, rng):
        vec = rng.normal(size=6)
        dense = CirculantMatrix(vec).to_dense()
        np.testing.assert_allclose(dense[:, 0], vec)

    def test_from_first_row(self, rng):
        row = rng.normal(size=7)
        dense = CirculantMatrix.from_first_row(row).to_dense()
        np.testing.assert_allclose(dense[0, :], row)

    def test_first_row_roundtrip(self, rng):
        matrix = CirculantMatrix(rng.normal(size=9))
        rebuilt = CirculantMatrix.from_first_row(matrix.first_row)
        np.testing.assert_allclose(
            rebuilt.defining_vector, matrix.defining_vector
        )

    def test_rejects_non_vector(self, rng):
        with pytest.raises(ShapeError):
            CirculantMatrix(rng.normal(size=(3, 3)))
        with pytest.raises(ShapeError):
            CirculantMatrix(np.array([]))

    def test_dense_structure_is_circulant(self, rng):
        dense = CirculantMatrix(rng.normal(size=8)).to_dense()
        for i in range(8):
            for j in range(8):
                assert dense[i, j] == dense[(i + 1) % 8, (j + 1) % 8]

    def test_num_parameters(self):
        assert CirculantMatrix(np.arange(5.0)).num_parameters == 5


class TestProducts:
    @pytest.mark.parametrize("k", [1, 2, 4, 8, 16])
    def test_matvec_matches_dense(self, rng, k):
        matrix = CirculantMatrix(rng.normal(size=k))
        x = rng.normal(size=k)
        np.testing.assert_allclose(
            matrix.matvec(x), matrix.to_dense() @ x, atol=1e-9
        )

    def test_matvec_batched(self, rng):
        matrix = CirculantMatrix(rng.normal(size=8))
        x = rng.normal(size=(5, 8))
        np.testing.assert_allclose(
            matrix.matvec(x), x @ matrix.to_dense().T, atol=1e-9
        )

    def test_rmatvec_is_transpose(self, rng):
        matrix = CirculantMatrix(rng.normal(size=8))
        y = rng.normal(size=8)
        np.testing.assert_allclose(
            matrix.rmatvec(y), matrix.to_dense().T @ y, atol=1e-9
        )

    def test_matvec_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            CirculantMatrix(rng.normal(size=8)).matvec(rng.normal(size=7))

    def test_radix2_backend(self, rng):
        matrix = CirculantMatrix(rng.normal(size=16))
        x = rng.normal(size=16)
        np.testing.assert_allclose(
            matrix.matvec(x, backend="radix2"), matrix.matvec(x), atol=1e-9
        )

    def test_matmul_operator_with_vector(self, rng):
        matrix = CirculantMatrix(rng.normal(size=4))
        x = rng.normal(size=4)
        np.testing.assert_allclose(matrix @ x, matrix.matvec(x))


class TestAlgebra:
    def test_eigenvalues_are_fft_of_column(self, rng):
        vec = rng.normal(size=8)
        matrix = CirculantMatrix(vec)
        eigs = np.sort_complex(np.linalg.eigvals(matrix.to_dense()))
        np.testing.assert_allclose(
            eigs, np.sort_complex(matrix.eigenvalues()), atol=1e-8
        )

    def test_product_of_circulants_is_circulant(self, rng):
        a = CirculantMatrix(rng.normal(size=8))
        b = CirculantMatrix(rng.normal(size=8))
        product = a @ b
        assert isinstance(product, CirculantMatrix)
        np.testing.assert_allclose(
            product.to_dense(), a.to_dense() @ b.to_dense(), atol=1e-8
        )

    def test_circulants_commute(self, rng):
        a = CirculantMatrix(rng.normal(size=16))
        b = CirculantMatrix(rng.normal(size=16))
        np.testing.assert_allclose(
            (a @ b).to_dense(), (b @ a).to_dense(), atol=1e-8
        )

    def test_size_mismatch(self, rng):
        with pytest.raises(ShapeError):
            CirculantMatrix(rng.normal(size=8)) @ CirculantMatrix(
                rng.normal(size=4)
            )


class TestCirculantProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        k=st.sampled_from([1, 2, 3, 4, 6, 8, 12, 16]),
    )
    @settings(max_examples=40, deadline=None)
    def test_matvec_equals_dense_any_size(self, seed, k):
        # The numpy backend handles non-power-of-two sizes too.
        rng = np.random.default_rng(seed)
        matrix = CirculantMatrix(rng.normal(size=k))
        x = rng.normal(size=k)
        np.testing.assert_allclose(
            matrix.matvec(x), matrix.to_dense() @ x, atol=1e-8
        )

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_linearity_of_matvec(self, seed):
        rng = np.random.default_rng(seed)
        matrix = CirculantMatrix(rng.normal(size=8))
        x, y = rng.normal(size=(2, 8))
        a, b = rng.normal(size=2)
        np.testing.assert_allclose(
            matrix.matvec(a * x + b * y),
            a * matrix.matvec(x) + b * matrix.matvec(y),
            atol=1e-8,
        )
