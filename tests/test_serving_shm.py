"""Tests for shared-memory endpoint images (repro.serving.shm).

These run entirely in-process (attaching a segment published by the same
process is valid shared memory use), so they stay in tier-1: the
multi-process servers built on top are exercised in ``tests/test_serving_mp.py``
under the ``mp`` marker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fftcore.backend import CountingFFTBackend
from repro.nn import (
    BlockCirculantConv2D,
    BlockCirculantDense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.quant import quantized_view
from repro.serving import attach_image, publish_image
from repro.serving.shm import _ALIGN


def _fc_net(seed: int = 0) -> Sequential:
    return Sequential(
        BlockCirculantDense(32, 32, 8, seed=seed),
        ReLU(),
        BlockCirculantDense(32, 16, 4, seed=seed + 1),
    )


def _conv_net(seed: int = 0) -> Sequential:
    return Sequential(
        BlockCirculantConv2D(4, 8, 3, block_size=4, padding=1, seed=seed),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        BlockCirculantDense(8 * 3 * 3, 10, 2, seed=seed + 1),
    )


class TestPublishAttachRoundTrip:
    def test_fc_bit_identical(self, rng):
        net = _fc_net().compile_inference()
        x = rng.normal(size=(5, 32))
        expected = net.inference_forward(x)
        image = publish_image("default", net, 0)
        try:
            attached = attach_image(image.descriptor)
            np.testing.assert_array_equal(
                attached.network.inference_forward(x), expected
            )
            attached.close()
        finally:
            image.close_and_unlink()

    def test_conv_bit_identical(self, rng):
        net = _conv_net().compile_inference()
        x = rng.normal(size=(3, 4, 6, 6))
        expected = net.inference_forward(x)
        image = publish_image("conv", net, 2)
        try:
            attached = attach_image(image.descriptor)
            assert attached.endpoint == "conv"
            assert attached.generation == 2
            np.testing.assert_array_equal(
                attached.network.inference_forward(x), expected
            )
            attached.close()
        finally:
            image.close_and_unlink()

    def test_attach_runs_zero_ffts(self, rng):
        # The whole point of sharing the spectra: a worker cold start is
        # page-table setup, not transforms.
        net = _conv_net().compile_inference()
        image = publish_image("default", net, 0)
        try:
            counting = CountingFFTBackend("numpy")
            attached = attach_image(image.descriptor, backend=counting)
            assert counting.total() == 0
            x = rng.normal(size=(2, 4, 6, 6))
            np.testing.assert_array_equal(
                attached.network.inference_forward(x),
                net.inference_forward(x),
            )
            # Forward spent transforms on activations only — weights were
            # already spectral. Same count again on a warm second pass.
            first = counting.total()
            assert first > 0
            counting.reset()
            attached.network.inference_forward(x)
            assert counting.total() == first
            attached.close()
        finally:
            image.close_and_unlink()

    def test_attached_state_is_frozen_and_eval(self):
        net = _fc_net().compile_inference()
        image = publish_image("default", net, 0)
        try:
            attached = attach_image(image.descriptor)
            assert all(
                p.frozen for p in attached.network.parameters()
            )
            assert not attached.network.training
            attached.close()
        finally:
            image.close_and_unlink()

    def test_quantized_view_round_trips(self, rng):
        qnet = quantized_view(
            _fc_net().compile_inference(), weight_bits=8, activation_bits=8
        )
        qnet.compile_inference()
        x = rng.normal(size=(4, 32))
        expected = qnet.inference_forward(x)
        image = publish_image("quant", qnet, 0)
        try:
            assert image.descriptor["quantization"] == {
                "weight_bits": 8, "activation_bits": 8,
            }
            attached = attach_image(image.descriptor)
            assert attached.network.weight_quant_bits == 8
            np.testing.assert_array_equal(
                attached.network.inference_forward(x), expected
            )
            attached.close()
        finally:
            image.close_and_unlink()

    def test_descriptor_is_plain_data_and_aligned(self):
        # The descriptor crosses the process boundary: plain picklable
        # types only, and every array offset keeps the GEMM operands
        # cache-line aligned.
        import pickle

        net = _conv_net().compile_inference()
        image = publish_image("default", net, 0)
        try:
            descriptor = pickle.loads(pickle.dumps(image.descriptor))
            assert descriptor["segment"] == image.descriptor["segment"]
            for record in descriptor["parameters"] + descriptor["spectra"]:
                assert record["offset"] % _ALIGN == 0
            assert descriptor["nbytes"] == image.nbytes > 0
        finally:
            image.close_and_unlink()


class TestImageValidation:
    def test_publish_requires_compiled_network(self):
        with pytest.raises(ConfigurationError):
            publish_image("default", _fc_net(), 0)

    def test_attach_rejects_mismatched_parameters(self):
        net = _fc_net().compile_inference()
        image = publish_image("default", net, 0)
        try:
            descriptor = dict(image.descriptor)
            descriptor["parameters"] = descriptor["parameters"][:-1]
            with pytest.raises(ConfigurationError, match="missing"):
                attach_image(descriptor)
        finally:
            image.close_and_unlink()

    def test_attach_rejects_unknown_spectrum_parameter(self):
        net = _fc_net().compile_inference()
        image = publish_image("default", net, 0)
        try:
            descriptor = dict(image.descriptor)
            bad = dict(descriptor["spectra"][0], param="no.such.param")
            descriptor["spectra"] = [bad] + descriptor["spectra"][1:]
            with pytest.raises(ConfigurationError, match="unknown parameter"):
                attach_image(descriptor)
        finally:
            image.close_and_unlink()

    def test_attach_after_unlink_raises_file_not_found(self):
        net = _fc_net().compile_inference()
        image = publish_image("default", net, 0)
        descriptor = image.descriptor
        image.close_and_unlink()
        with pytest.raises(FileNotFoundError):
            attach_image(descriptor)

    def test_close_and_unlink_is_idempotent(self):
        net = _fc_net().compile_inference()
        image = publish_image("default", net, 0)
        image.close_and_unlink()
        image.close_and_unlink()  # second unlink: name already gone
