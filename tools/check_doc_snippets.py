#!/usr/bin/env python3
"""Fail CI when a python snippet in the docs no longer executes.

Extracts every fenced ```` ```python ```` block from the Markdown docs and
executes the blocks of each file **cumulatively** in one namespace (so a
quickstart can build a network in one block and serve it in the next),
inside a temporary working directory (so snippets may write files like
model artifacts without dirtying the repo). A snippet that raises fails
the check with the file, the block's ordinal, and the traceback — turning
the documentation into executable examples that cannot silently rot as
the API moves.

Blocks that are deliberately non-runnable (pseudo-code, fragments showing
a signature) opt out by tagging the fence info string::

    ```python no-run
    net.compile_inference(cache=...)   # never executed
    ```

Usage::

    PYTHONPATH=src python tools/check_doc_snippets.py [paths...]

Each path may be a Markdown file or a directory (searched recursively for
``*.md``). With no arguments, checks everything under ``docs/``. Exits
non-zero listing every failing snippet.
"""

from __future__ import annotations

import os
import re
import sys
import tempfile
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Opening fence with a python info string; the ``no-run`` tag opts out.
_FENCE_OPEN = re.compile(r"^```python(?P<tags>[^\n`]*)$")
_FENCE_CLOSE = re.compile(r"^```\s*$")


def iter_markdown_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .md file list."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.md"))
        elif path.suffix.lower() == ".md" and path.exists():
            files.add(path)
        else:
            print(f"warning: skipping non-markdown path {path}",
                  file=sys.stderr)
    return sorted(files)


def extract_snippets(text: str) -> list[tuple[int, int, str, bool]]:
    """``(ordinal, line, source, runnable)`` for each ```python block."""
    snippets: list[tuple[int, int, str, bool]] = []
    lines = text.splitlines()
    index = 0
    ordinal = 0
    while index < len(lines):
        match = _FENCE_OPEN.match(lines[index].strip())
        if match is None:
            index += 1
            continue
        ordinal += 1
        start = index + 1
        body: list[str] = []
        index = start
        while index < len(lines) and not _FENCE_CLOSE.match(lines[index]):
            body.append(lines[index])
            index += 1
        index += 1  # past the closing fence
        runnable = "no-run" not in match.group("tags").split()
        snippets.append((ordinal, start + 1, "\n".join(body), runnable))
    return snippets


def check_file(md_file: Path) -> tuple[list[str], int]:
    """Run one file's snippets cumulatively; returns (problems, run count)."""
    problems: list[str] = []
    try:
        shown = md_file.relative_to(REPO_ROOT)
    except ValueError:
        shown = md_file
    namespace: dict = {"__name__": f"docsnippets[{shown}]"}
    executed = 0
    for ordinal, line, source, runnable in extract_snippets(
        md_file.read_text(encoding="utf-8")
    ):
        if not runnable:
            continue
        try:
            code = compile(source, f"{shown}:snippet-{ordinal}", "exec")
            exec(code, namespace)  # noqa: S102 - executing our own docs is the point
            executed += 1
        except Exception:
            problems.append(
                f"{shown}: python snippet #{ordinal} (line {line}) raised:\n"
                + traceback.format_exc(limit=4)
            )
    return problems, executed


def main(argv: list[str]) -> int:
    if argv:
        roots = [Path(arg).resolve() for arg in argv]
    else:
        roots = [REPO_ROOT / "docs"]
        roots = [p for p in roots if p.exists()]
    files = iter_markdown_files(roots)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 2
    problems: list[str] = []
    executed = 0
    # Snippets that persist artifacts write into a scratch cwd, not the repo.
    original_cwd = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="doc-snippets-") as scratch:
        os.chdir(scratch)
        try:
            for md_file in files:
                file_problems, file_runs = check_file(md_file)
                problems.extend(file_problems)
                executed += file_runs
        finally:
            os.chdir(original_cwd)
    for problem in problems:
        print(problem)
    print(f"checked {len(files)} file(s), executed {executed} snippet(s): "
          f"{'FAIL' if problems else 'ok'} ({len(problems)} failing)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
