#!/usr/bin/env python3
"""Fail CI on broken intra-repo links in the Markdown docs.

Scans Markdown files for inline links/images ``[text](target)`` and
reference definitions ``[label]: target``, and checks that every
*relative* target resolves to an existing file or directory (anchors are
stripped; external ``http(s)``/``mailto`` targets are ignored — this is a
repo-consistency check, not a web crawler).

Usage::

    python tools/check_links.py [paths...]

Each path may be a Markdown file or a directory (searched recursively for
``*.md``). With no arguments, checks the repository's top-level ``*.md``
files plus everything under ``docs/``. Exits non-zero listing every
broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Badge-style links [![alt](img)](target): the plain inline regex below
# only sees the inner image, so these are matched first — capturing both
# the image URL and the outer target — and stripped before the plain scan.
_BADGE_LINK = re.compile(
    r"\[!\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)\]"
    r"\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)"
)
# Inline links/images: [text](target "optional title").
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
# Reference-style definitions: [label]: target
_REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?(?:\s+\"[^\"]*\")?\s*$",
                      re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .md file list."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.md"))
        elif path.suffix.lower() == ".md" and path.exists():
            files.add(path)
        else:
            print(f"warning: skipping non-markdown path {path}",
                  file=sys.stderr)
    return sorted(files)


def extract_targets(text: str) -> list[str]:
    """All link targets in ``text``: badge, inline, and reference-style."""
    targets: list[str] = []

    def strip_badge(match: re.Match) -> str:
        targets.extend(match.groups())  # image URL + outer target
        return ""

    text = _BADGE_LINK.sub(strip_badge, text)
    targets.extend(_INLINE_LINK.findall(text))
    targets.extend(_REF_DEF.findall(text))
    return targets


def check_file(md_file: Path) -> list[str]:
    """Broken-link descriptions for one Markdown file (empty = clean)."""
    problems: list[str] = []
    text = md_file.read_text(encoding="utf-8")
    for target in extract_targets(text):
        if target.startswith(_EXTERNAL):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:  # pure in-page anchor
            continue
        if path_part.startswith("/"):
            resolved = REPO_ROOT / path_part.lstrip("/")
        else:
            resolved = md_file.parent / path_part
        if not resolved.exists():
            try:
                shown = md_file.relative_to(REPO_ROOT)
            except ValueError:
                shown = md_file
            problems.append(f"{shown}: broken link -> {target}")
    return problems


def main(argv: list[str]) -> int:
    if argv:
        roots = [Path(arg).resolve() for arg in argv]
    else:
        roots = sorted(REPO_ROOT.glob("*.md")) + [REPO_ROOT / "docs"]
        roots = [p for p in roots if p.exists()]
    files = iter_markdown_files(roots)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 2
    problems: list[str] = []
    for md_file in files:
        problems.extend(check_file(md_file))
    for problem in problems:
        print(problem)
    print(f"checked {len(files)} file(s): "
          f"{'FAIL' if problems else 'ok'} ({len(problems)} broken link(s))")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
